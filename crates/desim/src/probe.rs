//! Zero-cost-when-disabled wall-clock profiling scopes.
//!
//! The engine's perf trajectory is tracked as ns/event medians, but a
//! median cannot say *where* a nanosecond went. This module adds the
//! missing attribution layer: a driver (the `dot11-adhoc` world) declares
//! a table of named scopes, wraps each hot region in a
//! [`Probe::tick`]/[`Probe::record`] pair, and a [`WallProbe`] accumulates
//! a per-scope `{count, total, min, max}` histogram of wall time.
//!
//! The cost model mirrors `TraceSink`: drivers are generic over
//! `P: Probe`, and the default [`NoProbe`] has `ENABLED = false` with
//! empty inline `tick`/`record` bodies, so every instrumentation site
//! compiles away at monomorphization time — an unprofiled simulation pays
//! zero cost, verified by the `profile` bench group's overhead gate.
//! A [`WallProbe`] can additionally be constructed *disarmed*
//! ([`WallProbe::off`]): the sites stay compiled in but `tick` returns
//! `None` and `record` does nothing, which is the "enabled but off"
//! configuration the overhead gate compares against the compiled-out
//! build.
//!
//! Scopes are plain indices into the driver-declared name table, so the
//! probe stays below every protocol crate in the dependency graph and
//! recording is two array ops plus a clock read.

use std::time::Instant;

/// A consumer of timing scopes (see module docs).
///
/// Drivers call [`Probe::tick`] before a region and
/// [`Probe::record`] after it with the tick value; the probe charges the
/// elapsed wall time to the scope index. `Tick` is whatever the probe
/// needs to measure a span ([`Instant`] for [`WallProbe`], `()` for
/// [`NoProbe`]).
pub trait Probe {
    /// Whether this probe observes scopes at all. Leave at the default
    /// `true` for any probe that does work.
    const ENABLED: bool = true;

    /// A timestamp captured at region entry, returned to [`Probe::record`].
    type Tick: Copy;

    /// Captures a timestamp at region entry.
    fn tick(&self) -> Self::Tick;

    /// Charges the time since `since` to scope index `scope`.
    fn record(&mut self, scope: usize, since: Self::Tick);

    /// A new probe with the same configuration (scope table, armed state)
    /// but zeroed accumulators. The sharded executor hands each worker
    /// thread a fresh probe so hot-path recording never contends, then
    /// folds the workers back with [`Probe::merge`].
    fn fresh(&self) -> Self
    where
        Self: Sized;

    /// Folds another probe's accumulated scopes into this one, scope by
    /// scope: counts and totals add, mins/maxes widen. Merging wall-time
    /// scopes recorded on concurrent threads can legitimately attribute
    /// more than 100% of elapsed wall time — overlap is real time spent.
    fn merge(&mut self, other: &Self)
    where
        Self: Sized;

    /// The accumulated histogram, if this probe measured anything.
    fn report(&self) -> Option<ProbeReport> {
        None
    }
}

/// The default probe: measures nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ENABLED: bool = false;

    type Tick = ();

    #[inline(always)]
    fn tick(&self) {}

    #[inline(always)]
    fn record(&mut self, _scope: usize, _since: ()) {}

    #[inline(always)]
    fn fresh(&self) -> NoProbe {
        NoProbe
    }

    #[inline(always)]
    fn merge(&mut self, _other: &NoProbe) {}
}

/// One scope's accumulated wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeStats {
    /// The scope's name from the driver's scope table.
    pub name: &'static str,
    /// Regions recorded.
    pub count: u64,
    /// Total wall time across all regions, nanoseconds.
    pub total_ns: u64,
    /// Shortest region, nanoseconds (0 when `count` is 0).
    pub min_ns: u64,
    /// Longest region, nanoseconds.
    pub max_ns: u64,
}

impl ScopeStats {
    fn empty(name: &'static str) -> ScopeStats {
        ScopeStats {
            name,
            count: 0,
            total_ns: 0,
            min_ns: 0,
            max_ns: 0,
        }
    }

    fn add(&mut self, ns: u64) {
        self.min_ns = if self.count == 0 {
            ns
        } else {
            self.min_ns.min(ns)
        };
        self.count += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another accumulator for the same scope into this one.
    fn absorb(&mut self, other: &ScopeStats) {
        if other.count == 0 {
            return;
        }
        self.min_ns = if self.count == 0 {
            other.min_ns
        } else {
            self.min_ns.min(other.min_ns)
        };
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean region length, nanoseconds (0 when nothing was recorded).
    pub fn mean_ns(&self) -> f64 {
        if self.count > 0 {
            self.total_ns as f64 / self.count as f64
        } else {
            0.0
        }
    }
}

/// A finished probe's per-scope histogram, in scope-table order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProbeReport {
    /// Every scope the probe was constructed with, including unvisited
    /// ones (`count == 0`), in declaration order.
    pub scopes: Vec<ScopeStats>,
}

impl ProbeReport {
    /// Looks a scope up by name.
    pub fn scope(&self, name: &str) -> Option<&ScopeStats> {
        self.scopes.iter().find(|s| s.name == name)
    }

    /// Total recorded wall time over `names`, nanoseconds. Names missing
    /// from the table contribute nothing.
    pub fn total_ns_of(&self, names: &[&str]) -> u64 {
        names
            .iter()
            .filter_map(|n| self.scope(n))
            .map(|s| s.total_ns)
            .sum()
    }
}

/// A wall-clock probe over a driver-declared scope table.
///
/// Construct armed with [`WallProbe::new`] or disarmed with
/// [`WallProbe::off`] (sites compiled in, nothing measured — the
/// configuration the overhead gate benchmarks).
#[derive(Debug, Clone)]
pub struct WallProbe {
    armed: bool,
    scopes: Vec<ScopeStats>,
}

impl WallProbe {
    /// An armed probe over `names`; scope indices follow table order.
    pub fn new(names: &'static [&'static str]) -> WallProbe {
        WallProbe {
            armed: true,
            scopes: names.iter().map(|n| ScopeStats::empty(n)).collect(),
        }
    }

    /// A disarmed probe: instrumentation sites stay compiled in
    /// (`ENABLED` is `true`) but every tick returns `None`, so nothing is
    /// measured and [`Probe::report`] returns `None`.
    pub fn off(names: &'static [&'static str]) -> WallProbe {
        WallProbe {
            armed: false,
            scopes: names.iter().map(|n| ScopeStats::empty(n)).collect(),
        }
    }

    /// Whether this probe is measuring.
    pub fn is_armed(&self) -> bool {
        self.armed
    }
}

impl Probe for WallProbe {
    type Tick = Option<Instant>;

    #[inline]
    fn tick(&self) -> Option<Instant> {
        if self.armed {
            Some(Instant::now())
        } else {
            None
        }
    }

    #[inline]
    fn record(&mut self, scope: usize, since: Option<Instant>) {
        if let Some(t0) = since {
            self.scopes[scope].add(t0.elapsed().as_nanos() as u64);
        }
    }

    fn fresh(&self) -> WallProbe {
        WallProbe {
            armed: self.armed,
            scopes: self
                .scopes
                .iter()
                .map(|s| ScopeStats::empty(s.name))
                .collect(),
        }
    }

    fn merge(&mut self, other: &WallProbe) {
        debug_assert_eq!(
            self.scopes.len(),
            other.scopes.len(),
            "merging probes over different scope tables"
        );
        for (mine, theirs) in self.scopes.iter_mut().zip(&other.scopes) {
            mine.absorb(theirs);
        }
    }

    fn report(&self) -> Option<ProbeReport> {
        self.armed.then(|| ProbeReport {
            scopes: self.scopes.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCOPES: [&str; 3] = ["alpha", "beta", "gamma"];

    #[test]
    fn no_probe_is_disabled_and_reports_nothing() {
        fn enabled<P: Probe>(_: &P) -> bool {
            P::ENABLED
        }
        // Exercised generically, as `World` uses it — the unit `Tick` is
        // opaque here.
        fn visit<P: Probe>(p: &mut P) {
            let t = p.tick();
            p.record(0, t);
        }
        let mut p = NoProbe;
        assert!(!enabled(&p));
        visit(&mut p);
        assert!(p.report().is_none());
    }

    #[test]
    fn wall_probe_accumulates_per_scope() {
        let mut p = WallProbe::new(&SCOPES);
        assert!(p.is_armed());
        for _ in 0..3 {
            let t = p.tick();
            std::hint::black_box(());
            p.record(1, t);
        }
        let t = p.tick();
        p.record(2, t);
        let report = p.report().expect("armed probe reports");
        assert_eq!(report.scopes.len(), 3);
        let beta = report.scope("beta").expect("beta exists");
        assert_eq!(beta.count, 3);
        assert!(beta.total_ns >= beta.min_ns.saturating_mul(3) || beta.total_ns == 0);
        assert!(beta.min_ns <= beta.max_ns);
        assert_eq!(report.scope("alpha").expect("alpha").count, 0);
        assert_eq!(report.scope("gamma").expect("gamma").count, 1);
        assert!(report.scope("missing").is_none());
    }

    #[test]
    fn disarmed_probe_measures_and_reports_nothing() {
        let mut p = WallProbe::off(&SCOPES);
        assert!(!p.is_armed());
        let t = p.tick();
        assert!(t.is_none());
        p.record(0, t);
        assert!(p.report().is_none());
    }

    #[test]
    fn report_totals_over_names() {
        let mut p = WallProbe::new(&SCOPES);
        let t = p.tick();
        p.record(0, t);
        let t = p.tick();
        p.record(1, t);
        let r = p.report().expect("report");
        let all = r.total_ns_of(&["alpha", "beta", "gamma", "missing"]);
        let sum: u64 = r.scopes.iter().map(|s| s.total_ns).sum();
        assert_eq!(all, sum);
    }

    #[test]
    fn fresh_clones_configuration_not_data() {
        let mut p = WallProbe::new(&SCOPES);
        let t = p.tick();
        p.record(1, t);
        let f = Probe::fresh(&p);
        assert!(f.is_armed());
        let r = f.report().expect("armed");
        assert_eq!(r.scopes.len(), 3);
        assert!(r.scopes.iter().all(|s| s.count == 0));
        // A disarmed probe stays disarmed through fresh().
        let off = WallProbe::off(&SCOPES);
        assert!(!Probe::fresh(&off).is_armed());
        // NoProbe round-trips trivially.
        let mut n = NoProbe;
        let n2 = Probe::fresh(&n);
        Probe::merge(&mut n, &n2);
    }

    #[test]
    fn merge_folds_worker_scopes_into_one_report() {
        let mut main = WallProbe::new(&SCOPES);
        let t = main.tick();
        main.record(0, t);
        let mut worker = Probe::fresh(&main);
        for _ in 0..4 {
            let t = worker.tick();
            std::hint::black_box(());
            worker.record(1, t);
        }
        let worker_beta = worker.report().expect("report").scopes[1];
        Probe::merge(&mut main, &worker);
        let r = main.report().expect("report");
        let beta = r.scope("beta").expect("beta");
        assert_eq!(beta.count, 4);
        assert_eq!(beta.total_ns, worker_beta.total_ns);
        assert_eq!(beta.min_ns, worker_beta.min_ns);
        assert_eq!(beta.max_ns, worker_beta.max_ns);
        assert_eq!(r.scope("alpha").expect("alpha").count, 1);
        // Merging an all-empty probe changes nothing.
        let before = r.clone();
        let blank = Probe::fresh(&main);
        Probe::merge(&mut main, &blank);
        assert_eq!(main.report().expect("report"), before);
    }

    #[test]
    fn scope_stats_absorb_matches_replayed_adds() {
        let mut a = ScopeStats::empty("x");
        a.add(10);
        a.add(30);
        let mut b = ScopeStats::empty("x");
        b.add(2);
        b.add(50);
        let mut merged = a;
        merged.absorb(&b);
        let mut replay = ScopeStats::empty("x");
        for ns in [10, 30, 2, 50] {
            replay.add(ns);
        }
        assert_eq!(merged, replay);
        // Absorbing into an empty accumulator copies the other side.
        let mut empty = ScopeStats::empty("x");
        empty.absorb(&b);
        assert_eq!(empty, b);
    }

    #[test]
    fn scope_stats_track_min_max_mean() {
        let mut s = ScopeStats::empty("x");
        assert_eq!(s.mean_ns(), 0.0);
        s.add(10);
        s.add(2);
        s.add(30);
        assert_eq!((s.count, s.total_ns, s.min_ns, s.max_ns), (3, 42, 2, 30));
        assert!((s.mean_ns() - 14.0).abs() < 1e-12);
    }
}
