//! Simulation time: nanosecond-resolution instants and durations.
//!
//! The 802.11b PHY needs sub-microsecond arithmetic (a 28-byte header at
//! 11 Mb/s lasts 20 363.6 ns), so both types count integer nanoseconds.
//! `u64` nanoseconds covers ~584 years of simulated time — far beyond any
//! experiment here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since the start of
/// the run.
///
/// `SimTime` is a point; [`SimDuration`] is a span. The arithmetic between
/// them mirrors `std::time::{Instant, Duration}`.
///
/// # Example
///
/// ```
/// use desim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_micros(50);
/// assert_eq!(t.as_micros(), 50);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(50));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
///
/// # Example
///
/// ```
/// use desim::SimDuration;
/// let slot = SimDuration::from_micros(20);
/// assert_eq!(slot * 16, SimDuration::from_micros(320));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from integer nanoseconds since the start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from integer microseconds since the start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from integer milliseconds since the start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from integer seconds since the start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the start of the run (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the start of the run, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] if
    /// `earlier` is actually later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The span from `earlier` to `self`, or `None` if `earlier` is later.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a span from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a span from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a span from integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a span from float seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large for the nanosecond
    /// range of `u64`.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0 && s <= u64::MAX as f64 / 1e9,
            "duration out of range: {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Builds a span from float microseconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative, NaN, or out of range.
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(
            us.is_finite() && us >= 0.0 && us <= u64::MAX as f64 / 1e3,
            "duration out of range: {us}"
        );
        SimDuration((us * 1e3).round() as u64)
    }

    /// The span in integer nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in float microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in float seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// True for the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulation clock overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation clock underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("negative duration between instants"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 && ns.is_multiple_of(1_000_000) {
            write!(
                f,
                "{}.{:03}s",
                ns / 1_000_000_000,
                ns % 1_000_000_000 / 1_000_000
            )
        } else if ns >= 1_000 && ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_nanos(2_000_000_000)
        );
    }

    #[test]
    fn instant_duration_arithmetic_round_trips() {
        let t0 = SimTime::from_micros(100);
        let d = SimDuration::from_nanos(1_500);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(30);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_micros(20)
        );
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_duration_since(late), None);
    }

    #[test]
    fn float_conversions_are_consistent() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d, SimDuration::from_millis(1_500));
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        let us = SimDuration::from_micros_f64(20.3636);
        assert_eq!(us.as_nanos(), 20_364); // rounds to nearest ns
    }

    #[test]
    #[should_panic(expected = "duration out of range")]
    fn negative_float_duration_panics() {
        let _ = SimDuration::from_secs_f64(-0.1);
    }

    #[test]
    #[should_panic(expected = "negative duration between instants")]
    fn reversed_instant_subtraction_panics() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    fn scaling_and_sum() {
        let slot = SimDuration::from_micros(20);
        assert_eq!(slot * 3, SimDuration::from_micros(60));
        assert_eq!(slot / 2, SimDuration::from_micros(10));
        let total: SimDuration = [slot, slot, slot].into_iter().sum();
        assert_eq!(total, SimDuration::from_micros(60));
    }

    #[test]
    fn debug_formats_pick_natural_units() {
        assert_eq!(format!("{:?}", SimDuration::from_micros(50)), "50us");
        assert_eq!(format!("{:?}", SimDuration::from_nanos(1_500)), "1500ns");
        assert_eq!(format!("{:?}", SimDuration::from_millis(2_500)), "2.500s");
        assert_eq!(format!("{:?}", SimTime::from_micros(7)), "t+7us");
    }
}
