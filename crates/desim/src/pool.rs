//! A tiny fork-join worker pool for intra-event parallelism.
//!
//! The sharded executor in `dot11-core` parallelises the *inside* of a
//! single event — scattering a frame to its audible slice, running the
//! per-receiver PHY arrival scan, evaluating BER outcomes — while the
//! event loop itself stays serial. That workload has an unusual shape:
//!
//! * sections are **short** (a disk4096 fan-out is ~100 deliveries at
//!   50–70 ns each, i.e. a handful of microseconds of total work), so a
//!   channel- or condvar-based dispatch costing 1–5 µs per hop would eat
//!   the entire win;
//! * sections are **frequent** (one to three per signal event, tens of
//!   thousands per simulated second), separated by serial commit code in
//!   the tens-of-nanoseconds to low-microseconds range;
//! * between bursts the pool can sit idle for long stretches (TCP idle
//!   periods, warmup), where burning cores spinning would be rude to the
//!   sweep-level job pool sharing the machine.
//!
//! [`WorkerPool`] therefore uses an epoch-counter broadcast with an
//! adaptive *spin → yield → park* wait on the worker side: during a hot
//! burst a worker notices the next epoch within ~100 ns of spinning; if
//! nothing arrives it yields a few times, then parks, and the
//! coordinator pays one `unpark` syscall to wake it. The coordinator
//! always participates as worker 0, so `threads = 1` degenerates to a
//! plain function call with zero synchronisation.
//!
//! # Broadcast contract
//!
//! [`WorkerPool::broadcast`] takes `&(dyn Fn(usize) + Sync)` and runs it
//! once on every worker (including the caller) with the worker index as
//! argument, returning only after **all** workers have finished. The
//! closure borrows from the caller's stack; this is sound because the
//! call blocks until the last worker drops its reference (the lifetime
//! is erased internally, never extended past the call).
//!
//! Workers are detached OS threads owned by the pool (not scoped
//! threads), so a `WorkerPool` can live inside long-lived structs such
//! as `World` without infecting them with lifetimes. `Drop` signals
//! stop, wakes everyone, and joins.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle, Thread};

/// How many tight spin iterations a worker burns before yielding.
const SPIN_ITERS: usize = 4096;
/// How many `yield_now` rounds after spinning before parking.
const YIELD_ITERS: usize = 64;

/// Per-worker sleep slot: a parked flag plus the worker's thread handle
/// so the coordinator can `unpark` exactly the workers that went to
/// sleep (a parked worker re-checks the epoch *after* setting the flag,
/// and `unpark` tokens are sticky, so the wakeup cannot be lost).
struct Sleeper {
    parked: AtomicBool,
    thread: Mutex<Option<Thread>>,
}

/// State shared between the coordinator and the detached workers.
struct PoolShared {
    /// Bumped once per broadcast; workers run the task when they observe
    /// an epoch newer than the last one they completed.
    epoch: AtomicUsize,
    /// Workers still running the current task. The coordinator waits for
    /// this to hit zero before `broadcast` returns.
    remaining: AtomicUsize,
    /// The type-erased task for the current epoch. Only written by the
    /// coordinator while `remaining == 0` (no broadcast in flight) and
    /// only read by workers between observing the epoch bump and
    /// decrementing `remaining`, so access is ordered by those atomics.
    task: UnsafeCell<Option<*const (dyn Fn(usize) + Sync)>>,
    /// Set once at shutdown; workers exit their loop on the next wake.
    stop: AtomicBool,
    /// One slot per spawned worker (index 1..threads; the coordinator is
    /// worker 0 and never sleeps here).
    sleepers: Vec<Sleeper>,
}

// SAFETY: `task` is the only non-Sync field. It is published strictly
// before the epoch bump that makes workers read it, and the coordinator
// never rewrites it until every reader has decremented `remaining` —
// the atomics above impose the required happens-before edges.
unsafe impl Sync for PoolShared {}
// SAFETY: the raw task pointer is only dereferenced while the owning
// `broadcast` call is blocked on `remaining`; moving the Arc between
// threads does not extend the pointee's life.
unsafe impl Send for PoolShared {}

/// Fork-join pool with `threads` total lanes of parallelism (the caller
/// counts as one; `threads - 1` OS threads are spawned).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Builds a pool with `threads` total lanes. `threads <= 1` spawns
    /// nothing; `broadcast` then just calls the task inline.
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let spawned = threads - 1;
        let shared = Arc::new(PoolShared {
            epoch: AtomicUsize::new(0),
            remaining: AtomicUsize::new(0),
            task: UnsafeCell::new(None),
            stop: AtomicBool::new(false),
            sleepers: (0..spawned)
                .map(|_| Sleeper {
                    parked: AtomicBool::new(false),
                    thread: Mutex::new(None),
                })
                .collect(),
        });
        let handles = (0..spawned)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("dot11-shard-{}", i + 1))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn shard worker")
            })
            .collect();
        WorkerPool {
            shared,
            threads,
            handles,
        }
    }

    /// Total lanes of parallelism, caller included. Always ≥ 1.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `task(w)` once for every worker index `w in 0..threads`,
    /// concurrently, and returns when all calls have completed. The
    /// caller executes `task(0)` itself.
    pub fn broadcast(&self, task: &(dyn Fn(usize) + Sync)) {
        if self.threads == 1 {
            task(0);
            return;
        }
        let shared = &*self.shared;
        let workers = self.threads - 1;
        // Publish the task, then open the epoch. No broadcast is in
        // flight here (we own &self and the previous call drained
        // `remaining` to zero), so the plain write cannot race.
        unsafe {
            // Erase the borrow's lifetime: workers are done with the
            // pointer before this function returns.
            let erased: *const (dyn Fn(usize) + Sync) = task;
            *shared.task.get() = Some(std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync),
            >(erased));
        }
        shared.remaining.store(workers, Ordering::Release);
        shared.epoch.fetch_add(1, Ordering::SeqCst);
        // Wake only the workers that actually parked; spinners see the
        // epoch bump on their own.
        for sleeper in &shared.sleepers {
            if sleeper.parked.swap(false, Ordering::SeqCst) {
                if let Some(t) = sleeper.thread.lock().expect("sleeper lock").as_ref() {
                    t.unpark();
                }
            }
        }
        // Participate as worker 0, then wait for the stragglers.
        task(0);
        let mut spins = 0usize;
        while shared.remaining.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins > SPIN_ITERS {
                thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let shared = &*self.shared;
        shared.stop.store(true, Ordering::SeqCst);
        // Bump the epoch so spinners notice *something* changed, and
        // unpark everyone so sleepers re-check `stop`.
        shared.epoch.fetch_add(1, Ordering::SeqCst);
        for sleeper in &shared.sleepers {
            sleeper.parked.store(false, Ordering::SeqCst);
            if let Some(t) = sleeper.thread.lock().expect("sleeper lock").as_ref() {
                t.unpark();
            }
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, slot: usize) {
    // Register our thread handle so the coordinator can unpark us.
    *shared.sleepers[slot].thread.lock().expect("sleeper lock") = Some(thread::current());
    let worker_index = slot + 1;
    let mut seen_epoch = 0usize;
    loop {
        // Adaptive wait for the next epoch: spin, then yield, then park.
        let mut spins = 0usize;
        let mut yields = 0usize;
        loop {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let epoch = shared.epoch.load(Ordering::SeqCst);
            if epoch != seen_epoch {
                seen_epoch = epoch;
                break;
            }
            if spins < SPIN_ITERS {
                spins += 1;
                std::hint::spin_loop();
            } else if yields < YIELD_ITERS {
                yields += 1;
                thread::yield_now();
            } else {
                let sleeper = &shared.sleepers[slot];
                sleeper.parked.store(true, Ordering::SeqCst);
                // Re-check after setting the flag: if the coordinator
                // bumped the epoch in between, it either saw our flag
                // (and will unpark — tokens are sticky so park returns
                // immediately) or we see the bump right here.
                if shared.epoch.load(Ordering::SeqCst) != seen_epoch
                    || shared.stop.load(Ordering::SeqCst)
                {
                    sleeper.parked.store(false, Ordering::SeqCst);
                    continue;
                }
                thread::park();
                spins = 0;
                yields = 0;
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // SAFETY: the epoch bump happens-after the task write, and the
        // coordinator won't touch the slot again until we decrement
        // `remaining` below.
        let task = unsafe { (*shared.task.get()).expect("task published before epoch bump") };
        // SAFETY: the pointee outlives this call — `broadcast` blocks
        // until `remaining` hits zero.
        unsafe { (*task)(worker_index) };
        shared.remaining.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A `Send + Sync` cell handing out `&mut T` across threads.
///
/// Used by the sharded executor to let broadcast closures mutate
/// *disjoint* regions of coordinator-owned data (per-worker probes,
/// per-delivery result slots, chunks of a scatter buffer) without
/// locking. All safety obligations sit on the caller of [`get`]:
///
/// # Safety contract
///
/// Callers must guarantee that concurrent `get` calls never produce
/// overlapping mutable access — in practice each worker index maps to a
/// statically disjoint slice of the underlying data, and the fork-join
/// barrier in [`WorkerPool::broadcast`] ensures the borrows end before
/// the coordinator touches the data again.
///
/// [`get`]: SharedMut::get
pub struct SharedMut<T: ?Sized>(*mut T);

// SAFETY: SharedMut is a plain pointer wrapper; the disjointness
// contract on `get` is what makes cross-thread use sound.
unsafe impl<T: ?Sized> Send for SharedMut<T> {}
unsafe impl<T: ?Sized> Sync for SharedMut<T> {}

impl<T: ?Sized> SharedMut<T> {
    /// Wraps an exclusive borrow. The wrapper must not outlive it.
    pub fn new(value: &mut T) -> SharedMut<T> {
        SharedMut(value as *mut T)
    }

    /// Reborrows the wrapped value mutably.
    ///
    /// # Safety
    ///
    /// The caller must ensure no two live borrows returned by `get`
    /// access overlapping data, and that the original borrow passed to
    /// [`SharedMut::new`] is still live.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get(&self) -> &mut T {
        unsafe { &mut *self.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_runs_every_worker_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits = [const { AtomicU64::new(0) }; 4];
        let sum = AtomicU64::new(0);
        pool.broadcast(&|w| {
            hits[w].fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(w as u64 + 1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
        assert_eq!(sum.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
    }

    #[test]
    fn broadcast_reuses_workers_across_many_rounds() {
        let pool = WorkerPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..1000 {
            pool.broadcast(&|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 3000);
    }

    #[test]
    fn broadcast_observes_caller_stack_writes() {
        // Workers mutate disjoint slots of a caller-owned buffer via
        // SharedMut; the barrier makes the writes visible afterwards.
        let pool = WorkerPool::new(4);
        let mut data = vec![0u64; 64];
        {
            let view = SharedMut::new(data.as_mut_slice());
            pool.broadcast(&|w| {
                // SAFETY: strided indices are disjoint across workers.
                let slice = unsafe { view.get() };
                let mut i = w;
                while i < slice.len() {
                    slice[i] = i as u64 * 10;
                    i += 4;
                }
            });
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64 * 10);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut local = 0u64; // no atomics needed: provably inline
        {
            let cell = SharedMut::new(&mut local);
            pool.broadcast(&|w| {
                assert_eq!(w, 0);
                // SAFETY: only one worker exists.
                unsafe { *cell.get() += 7 };
            });
        }
        assert_eq!(local, 7);
    }

    #[test]
    fn workers_wake_after_parking() {
        let pool = WorkerPool::new(2);
        let count = AtomicU64::new(0);
        pool.broadcast(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        // Give the worker ample time to fall through spin → yield →
        // park, then broadcast again: the unpark path must wake it.
        std::thread::sleep(std::time::Duration::from_millis(50));
        pool.broadcast(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(4);
        pool.broadcast(&|_| {});
        drop(pool); // must not hang or leak threads
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        pool.broadcast(&|w| assert_eq!(w, 0));
    }
}
