//! Deterministic random-number streams.
//!
//! Every stochastic component of a simulation (each backoff generator, each
//! shadowing process, each traffic source) gets its **own** stream derived
//! from the master seed plus a stable label. Two runs with the same master
//! seed are bit-identical, and adding a new component never perturbs the
//! draws of existing ones — the key property for A/B experiments.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna), so the
//! crate carries no external dependency and the byte-for-byte output is
//! pinned by this file alone.

/// SplitMix64 step: the standard seed-expansion permutation. Used both to
/// expand the master seed and to mix in sub-stream labels.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable random stream.
///
/// # Example
///
/// ```
/// use desim::SimRng;
///
/// let mut a = SimRng::from_seed(7).substream(b"node-0/backoff");
/// let mut b = SimRng::from_seed(7).substream(b"node-0/backoff");
/// assert_eq!(a.gen_range_u32(0, 32), b.gen_range_u32(0, 32));
///
/// let mut c = SimRng::from_seed(7).substream(b"node-1/backoff");
/// // Different labels give independent streams (almost surely different
/// // draws; identical first draws are possible but the sequences diverge).
/// let _ = c.gen_range_u32(0, 32);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

impl SimRng {
    /// Creates the master stream for a run from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            state: expand_state(seed),
            seed,
        }
    }

    /// Derives an independent sub-stream for the component named `label`.
    ///
    /// The derivation depends only on the master seed and the label, not on
    /// how many draws have been made, so component streams are stable as
    /// the simulation grows.
    pub fn substream(&self, label: &[u8]) -> SimRng {
        // FNV-1a over the label, mixed with the master seed via SplitMix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let s = self.seed ^ h;
        SimRng {
            state: expand_state(s),
            seed: s,
        }
    }

    /// xoshiro256++ step: the raw 64-bit output.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Masked rejection sampling: unbiased, and for power-of-two spans
        // (every DCF contention window) it never rejects, so the hot path
        // consumes exactly one raw draw.
        let mask = span.next_power_of_two().wrapping_sub(1);
        loop {
            let v = (self.next_u64() as u32) & mask;
            if v < span {
                return lo + v;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits → the standard dyadic uniform on [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]` — safe to pass to `ln`.
    fn gen_f64_open_zero(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // gen_f64 < 1.0 always holds, so p = 1.0 is certainly true and
        // p = 0.0 certainly false.
        self.gen_f64() < p
    }

    /// Standard-normal draw (Box–Muller; one value per call, the pair's
    /// twin is discarded to keep the stream position independent of use).
    pub fn gen_std_normal(&mut self) -> f64 {
        // Rejection-free polar-form Box–Muller would consume a variable
        // number of uniforms; the trigonometric form consumes exactly two,
        // keeping draw counts predictable for reproducibility reasoning.
        let u1 = self.gen_f64_open_zero();
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gen_std_normal()
    }

    /// Exponential draw with the given mean (rate 1/mean).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive, got {mean}");
        -mean * self.gen_f64_open_zero().ln()
    }
}

/// Expands a 64-bit seed into a full xoshiro256++ state via SplitMix64, the
/// initialization the generator's authors recommend. A zero state is
/// unreachable this way.
fn expand_state(seed: u64) -> [u64; 4] {
    let mut s = seed;
    [
        splitmix64(&mut s),
        splitmix64(&mut s),
        splitmix64(&mut s),
        splitmix64(&mut s),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(123);
        let mut b = SimRng::from_seed(123);
        for _ in 0..100 {
            assert_eq!(a.gen_f64().to_bits(), b.gen_f64().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..64).filter(|_| a.gen_f64() == b.gen_f64()).count();
        assert!(same < 4, "streams should diverge, {same}/64 draws matched");
    }

    #[test]
    fn substreams_are_stable_and_label_dependent() {
        let master = SimRng::from_seed(99);
        let mut s1 = master.substream(b"alpha");
        let mut s1_again = master.substream(b"alpha");
        let mut s2 = master.substream(b"beta");
        let a: Vec<u64> = (0..16).map(|_| s1.gen_f64().to_bits()).collect();
        let b: Vec<u64> = (0..16).map(|_| s1_again.gen_f64().to_bits()).collect();
        let c: Vec<u64> = (0..16).map(|_| s2.gen_f64().to_bits()).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn substream_independent_of_master_position() {
        let mut master = SimRng::from_seed(5);
        let before = master.substream(b"x");
        let _ = master.gen_f64(); // advance master
        let after = master.substream(b"x");
        let mut x = before.clone();
        let mut y = after.clone();
        assert_eq!(x.gen_f64().to_bits(), y.gen_f64().to_bits());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SimRng::from_seed(7);
        for _ in 0..1000 {
            let v = r.gen_range_u32(3, 17);
            assert!((3..17).contains(&v));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SimRng::from_seed(21);
        let mut seen = [false; 32];
        for _ in 0..2000 {
            seen[r.gen_range_u32(0, 32) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 32 backoff slots reachable");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = SimRng::from_seed(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gen_std_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn exponential_mean_is_sane() {
        let mut r = SimRng::from_seed(13);
        let n = 20_000;
        let mean = (0..n).map(|_| r.gen_exp(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean} too far from 4");
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut r = SimRng::from_seed(17);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        // Out-of-range p is clamped rather than panicking.
        assert!(r.gen_bool(2.0));
        assert!(!r.gen_bool(-1.0));
    }
}
