//! The pending-event set: a priority queue ordered by `(time, sequence)`.
//!
//! Two properties matter for reproducible simulation:
//!
//! * **Deterministic tie-break.** Events scheduled for the same instant pop
//!   in the order they were scheduled (FIFO), never in heap-internal order.
//! * **Cheap cancellation without tombstones.** Timers (ACK timeouts,
//!   backoff expiry) are cancelled far more often than they fire. Each live
//!   event owns a generation-stamped slot in a slab; cancelling vacates the
//!   slot in O(1) — no per-event hashing, no tombstone set to grow. The
//!   heap entry left behind carries the generation it was minted under and
//!   is recognised as stale (and dropped) when it surfaces in `pop` or
//!   `peek_time`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A handle to a scheduled event, used to cancel it before it fires.
///
/// Handles are cheap to copy and remain valid (but inert) after the event
/// has fired or been cancelled: the slot generation recorded in the handle
/// no longer matches the slab, so late cancels are rejected in O(1) —
/// even when the slot has since been reused by a newer event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    slot: u32,
    generation: u32,
}

/// Heap entries carry only the scheduling key and a slot reference; the
/// payload lives in the slab so cancellation can reclaim it immediately.
///
/// The full ordering key is `(time, class, rank, seq)`:
///
/// * `class` 0 is an ordinary event; class 1 is *trailing* (see
///   [`EventQueue::push_trailing`]) and sorts after every ordinary event
///   at the same instant.
/// * `rank` is 0 for ordinary events. Trailing events store the bitwise
///   complement of their scheduling instant, so among trailing events at
///   the same firing instant the most recently scheduled fires first.
/// * `seq` keeps same-key events FIFO.
struct HeapEntry {
    time: SimTime,
    class: u8,
    rank: u64,
    seq: u64,
    slot: u32,
    generation: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest
        // (time, class, rank, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.rank.cmp(&self.rank))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One slab slot. The generation counts how many times the slot has been
/// vacated; a handle or heap entry minted under an older generation is
/// stale. (A single slot would need 2^32 reuses while one stale heap entry
/// stays buried for the counter to alias — beyond any simulated horizon.)
struct Slot<E> {
    generation: u32,
    event: Option<E>,
}

/// A cancellable future-event set ordered by `(time, insertion order)`.
///
/// This is the scheduling core used by [`crate::Simulator`]; it can also be
/// used directly when the caller wants to manage the clock itself.
///
/// # Example
///
/// ```
/// use desim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let h = q.push(SimTime::from_micros(10), "timeout");
/// q.push(SimTime::from_micros(10), "same-instant, scheduled later");
/// assert!(q.cancel(h));
/// let (_, ev) = q.pop().expect("one live event left");
/// assert_eq!(ev, "same-instant, scheduled later");
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry>,
    /// Event payloads, indexed by `HeapEntry::slot` / `EventHandle::slot`.
    slots: Vec<Slot<E>>,
    /// Vacated slot indices ready for reuse.
    free: Vec<u32>,
    /// FIFO tie-break for same-instant events.
    next_seq: u64,
    /// Live (scheduled, not cancelled, not fired) event count.
    live: usize,
    /// Largest live population ever reached (see [`EventQueue::high_water`]).
    high_water: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
            high_water: 0,
        }
    }

    /// Pre-sizes the heap and the slab for at least `capacity` pending
    /// events, so a caller with a known scale can keep the steady state
    /// allocation-free even if its peak population occurs late.
    pub fn reserve(&mut self, capacity: usize) {
        self.heap.reserve(capacity.saturating_sub(self.heap.len()));
        self.slots
            .reserve(capacity.saturating_sub(self.slots.len()));
        self.free.reserve(capacity.saturating_sub(self.free.len()));
    }

    /// Schedules `event` at `time` and returns a cancellation handle.
    pub fn push(&mut self, time: SimTime, event: E) -> EventHandle {
        self.push_keyed(time, 0, 0, event)
    }

    /// Schedules `event` at `time` in the **trailing class**: it pops
    /// after every ordinary event scheduled for the same instant,
    /// regardless of scheduling order.
    ///
    /// Among trailing events at the same firing instant, the one with the
    /// latest `scheduled_at` pops first; ties (same scheduling instant)
    /// stay FIFO. This mirrors what a self-rescheduling per-tick timer
    /// chain would produce for its next tick: a chain (re-)armed more
    /// recently was armed by an earlier-inserted event at the previous
    /// tick, so it fires ahead of older chains — the property that lets a
    /// coalesced multi-tick timer replace a per-tick chain without
    /// perturbing same-instant ordering.
    pub fn push_trailing(&mut self, time: SimTime, scheduled_at: SimTime, event: E) -> EventHandle {
        self.push_keyed(time, 1, !scheduled_at.as_nanos(), event)
    }

    fn push_keyed(&mut self, time: SimTime, class: u8, rank: u64, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].event = Some(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event slab exceeds u32 slots");
                self.slots.push(Slot {
                    generation: 0,
                    event: Some(event),
                });
                slot
            }
        };
        let generation = self.slots[slot as usize].generation;
        self.heap.push(HeapEntry {
            time,
            class,
            rank,
            seq,
            slot,
            generation,
        });
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        EventHandle { slot, generation }
    }

    /// Vacates `slot`, returning its payload and retiring the generation
    /// every outstanding handle/heap entry for it was minted under.
    fn vacate(&mut self, slot: u32) -> E {
        let s = &mut self.slots[slot as usize];
        let event = s.event.take().expect("vacating an empty slot");
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        event
    }

    /// Cancels a scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired or been cancelled (in which case nothing changes —
    /// repeated cancels of a dead handle are free and allocate nothing).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        match self.slots.get(handle.slot as usize) {
            Some(s) if s.generation == handle.generation && s.event.is_some() => {
                self.vacate(handle.slot);
                true
            }
            _ => false,
        }
    }

    /// Removes and returns the earliest live event with its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.slots[entry.slot as usize].generation != entry.generation {
                continue; // cancelled: the slot moved on without it
            }
            let event = self.vacate(entry.slot);
            return Some((entry.time, event));
        }
        None
    }

    /// The time of the earliest live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.slots[entry.slot as usize].generation == entry.generation {
                return Some(entry.time);
            }
            self.heap.pop(); // drop the stale entry eagerly
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The largest number of live events ever pending at once — the
    /// queue-depth high-water mark, a capacity-planning signal for the
    /// engine's self-instrumentation.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.live)
            .field("slots", &self.slots.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.push(t(10), 1);
        let h2 = q.push(t(20), 2);
        assert_eq!(q.len(), 2);
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert!(!q.cancel(h2), "cancelling a fired event reports false");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.push(t(10), 1);
        q.push(t(20), 2);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(t(20)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn bogus_handle_is_rejected() {
        let mut q = EventQueue::<u32>::new();
        let h = q.push(t(1), 7);
        let mut other = EventQueue::<u32>::new();
        // A handle minted by a different queue for a slot this queue has
        // never allocated is inert.
        for _ in 0..3 {
            other.push(t(1), 0);
        }
        let foreign = other.push(t(1), 0);
        assert!(!q.cancel(foreign));
        assert!(q.cancel(h));
    }

    #[test]
    fn stale_handle_to_reused_slot_is_inert() {
        let mut q = EventQueue::new();
        let h1 = q.push(t(10), 1);
        assert!(q.cancel(h1));
        // The push reuses h1's slot under a newer generation.
        let h2 = q.push(t(20), 2);
        assert!(
            !q.cancel(h1),
            "stale generation must not cancel the slot's new occupant"
        );
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert!(!q.cancel(h2));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        let (time, e) = q.pop().expect("event pending");
        assert_eq!((time, e), (t(10), "a"));
        q.push(time + SimDuration::from_micros(5), "b");
        q.push(time + SimDuration::from_micros(1), "c");
        assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn trailing_events_pop_after_ordinary_events_at_same_instant() {
        let mut q = EventQueue::new();
        // Trailing event scheduled FIRST still pops after ordinary events
        // at its instant — even ones scheduled later.
        q.push_trailing(t(100), t(0), "trailing");
        q.push(t(100), "ordinary-1");
        q.push(t(100), "ordinary-2");
        q.push(t(50), "earlier");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec!["earlier", "ordinary-1", "ordinary-2", "trailing"]
        );
    }

    #[test]
    fn trailing_events_order_by_recency_then_fifo() {
        let mut q = EventQueue::new();
        // Same firing instant, different scheduling instants: the most
        // recently scheduled trailing event pops first.
        q.push_trailing(t(100), t(10), "old");
        q.push_trailing(t(100), t(40), "new");
        // Same scheduling instant: FIFO.
        q.push_trailing(t(100), t(40), "new-2");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["new", "new-2", "old"]);
    }

    #[test]
    fn trailing_events_cancel_like_ordinary_ones() {
        let mut q = EventQueue::new();
        let h = q.push_trailing(t(100), t(0), 1);
        q.push(t(100), 2);
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
        assert_eq!(q.pop(), Some((t(100), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn trailing_keeps_time_order_across_instants() {
        let mut q = EventQueue::new();
        q.push_trailing(t(10), t(0), "t10");
        q.push(t(20), "o20");
        // A trailing event at an earlier instant still precedes ordinary
        // events at later instants.
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["t10", "o20"]);
    }

    #[test]
    fn mass_cancel_of_fired_handles_leaves_no_tombstones() {
        // Regression: a timer-heavy MAC retires millions of handles whose
        // events have already fired. Every such cancel must be a no-op
        // that stores nothing — the queue's footprint stays at the slab
        // high-water mark, not the cancel count.
        let mut q = EventQueue::new();
        let mut fired = Vec::new();
        for i in 0..4u64 {
            fired.push(q.push(t(i), i));
        }
        while q.pop().is_some() {}
        for _ in 0..250_000 {
            for &h in &fired {
                assert!(!q.cancel(h), "fired handle must stay inert");
            }
        }
        // One million dead cancels later: no tombstones anywhere.
        assert!(q.heap.is_empty());
        assert_eq!(q.free.len(), q.slots.len());
        assert!(q.slots.len() <= 4, "slab never grew past the live peak");
        // And the queue still schedules and cancels normally.
        let h = q.push(t(100), 42);
        assert_eq!(q.len(), 1);
        assert!(q.cancel(h));
        assert!(q.is_empty());
    }
}
