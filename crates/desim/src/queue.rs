//! The pending-event set: a priority queue ordered by `(time, sequence)`.
//!
//! Two properties matter for reproducible simulation:
//!
//! * **Deterministic tie-break.** Events scheduled for the same instant pop
//!   in the order they were scheduled (FIFO), never in heap-internal order.
//! * **O(log n) cancellation.** Timers (ACK timeouts, backoff expiry) are
//!   cancelled far more often than they fire. Cancellation marks the entry
//!   dead via its sequence number; dead entries are skipped lazily on pop.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// A handle to a scheduled event, used to cancel it before it fires.
///
/// Handles are cheap to copy and remain valid (but inert) after the event
/// has fired or been cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    seq: u64,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A cancellable future-event set ordered by `(time, insertion order)`.
///
/// This is the scheduling core used by [`crate::Simulator`]; it can also be
/// used directly when the caller wants to manage the clock itself.
///
/// # Example
///
/// ```
/// use desim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let h = q.push(SimTime::from_micros(10), "timeout");
/// q.push(SimTime::from_micros(10), "same-instant, scheduled later");
/// assert!(q.cancel(h));
/// let (_, ev) = q.pop().expect("one live event left");
/// assert_eq!(ev, "same-instant, scheduled later");
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers of entries still in the heap and not cancelled.
    pending: HashSet<u64>,
    /// Sequence numbers cancelled while still in the heap; their entries
    /// are skipped (and the mark dropped) when they surface in `pop`.
    cancelled: HashSet<u64>,
    next_seq: u64,
    /// Largest live population ever reached (see [`EventQueue::high_water`]).
    high_water: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Schedules `event` at `time` and returns a cancellation handle.
    pub fn push(&mut self, time: SimTime, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.pending.insert(seq);
        self.high_water = self.high_water.max(self.pending.len());
        EventHandle { seq }
    }

    /// Cancels a scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired or been cancelled (in which case nothing changes).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if self.pending.remove(&handle.seq) {
            self.cancelled.insert(handle.seq);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event with its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue; // skip dead entry
            }
            self.pending.remove(&entry.seq);
            return Some((entry.time, entry.event));
        }
        None
    }

    /// The time of the earliest live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The largest number of live events ever pending at once — the
    /// queue-depth high-water mark, a capacity-planning signal for the
    /// engine's self-instrumentation.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.pending.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.push(t(10), 1);
        let h2 = q.push(t(20), 2);
        assert_eq!(q.len(), 2);
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert!(!q.cancel(h2), "cancelling a fired event reports false");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.push(t(10), 1);
        q.push(t(20), 2);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(t(20)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn bogus_handle_is_rejected() {
        let mut q = EventQueue::<u32>::new();
        let h = q.push(t(1), 7);
        let mut other = EventQueue::<u32>::new();
        // A handle minted by a different queue with a higher seq is inert.
        for _ in 0..3 {
            other.push(t(1), 0);
        }
        let foreign = other.push(t(1), 0);
        assert!(!q.cancel(foreign));
        assert!(q.cancel(h));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        let (time, e) = q.pop().expect("event pending");
        assert_eq!((time, e), (t(10), "a"));
        q.push(time + SimDuration::from_micros(5), "b");
        q.push(time + SimDuration::from_micros(1), "c");
        assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }
}
