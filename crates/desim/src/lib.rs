//! Deterministic discrete-event simulation engine.
//!
//! `desim` is the substrate under the 802.11b ad hoc testbed: a nanosecond
//! clock, a cancellable event queue with deterministic ordering for
//! simultaneous events, and seedable random-number streams that stay
//! independent as components are added.
//!
//! The event loop is deliberately serial: reproducibility of a simulation
//! run given a seed is a correctness requirement for the experiments built
//! on top, and a work-stealing executor would trade that away. Parallelism
//! is offered *inside* an event instead — [`WorkerPool`] provides a
//! low-latency fork-join broadcast that higher layers use to fan
//! independent per-receiver work across cores while the event schedule
//! stays byte-identical to single-threaded execution.
//!
//! # Example
//!
//! ```
//! use desim::{SimDuration, Simulator};
//!
//! #[derive(Debug)]
//! enum Ev { Ping, Pong }
//!
//! let mut sim = Simulator::new();
//! sim.schedule_in(SimDuration::from_micros(10), Ev::Ping);
//! sim.schedule_in(SimDuration::from_micros(5), Ev::Pong);
//!
//! let (t1, e1) = sim.pop().expect("queue is non-empty");
//! assert_eq!(t1.as_micros(), 5);
//! assert!(matches!(e1, Ev::Pong));
//! let (t2, _) = sim.pop().expect("queue is non-empty");
//! assert_eq!(t2.as_micros(), 10);
//! assert!(sim.pop().is_none());
//! ```

#![warn(missing_docs)]

mod pool;
mod probe;
mod queue;
mod rng;
mod sim;
mod time;

pub use pool::{SharedMut, WorkerPool};
pub use probe::{NoProbe, Probe, ProbeReport, ScopeStats, WallProbe};
pub use queue::{EventHandle, EventQueue};
pub use rng::SimRng;
pub use sim::Simulator;
pub use time::{SimDuration, SimTime};
