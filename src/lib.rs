//! Umbrella crate for the 802.11b ad hoc measurement testbed.
//!
//! Reproduction of *"IEEE 802.11 Ad Hoc Networks: Performance
//! Measurements"* (Anastasi, Borgia, Conti, Gregori — ICDCS Workshops
//! 2003) as a deterministic discrete-event simulation. This crate simply
//! re-exports the workspace members so applications can depend on one
//! name:
//!
//! * [`desim`] — the discrete-event engine;
//! * `phy` — the 802.11b DSSS PHY and radio-propagation models;
//! * `mac` — the DCF MAC;
//! * `net` — IP/UDP/TCP-Reno stack and traffic sources;
//! * `trace` — structured tracing sinks and interval metrics;
//! * `adhoc` — scenarios, the simulation world, the analytic model, and
//!   the per-table/figure experiments.
//!
//! # Example
//!
//! ```
//! use dot11_testbed::adhoc::{ScenarioBuilder, Traffic};
//! use dot11_testbed::phy::PhyRate;
//! use desim::SimDuration;
//!
//! let report = ScenarioBuilder::new(PhyRate::R2)
//!     .line(&[0.0, 40.0])
//!     .duration(SimDuration::from_secs(2))
//!     .flow(0, 1, Traffic::SaturatedUdp { payload_bytes: 512, backlog: 5 })
//!     .run();
//! assert!(report.flow(dot11_testbed::net::FlowId(0)).throughput_kbps > 500.0);
//! ```

pub use desim;
pub use dot11_adhoc as adhoc;
pub use dot11_mac as mac;
pub use dot11_net as net;
pub use dot11_phy as phy;
pub use dot11_trace as trace;
