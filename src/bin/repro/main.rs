//! Regenerates every table and figure of the paper as text.
//!
//! Usage: `cargo run --release --bin repro [-- FLAGS]`
//!
//! * `--quick` — 4 s sessions instead of 20 s (same shapes, less
//!   confidence).
//! * `--json <path>` — additionally write a machine-readable report of
//!   the four-station figures (7/9/11/12): per-cell throughputs, engine
//!   self-instrumentation, and a per-interval throughput time series.
//! * `--metrics <interval>` — window length for that time series
//!   (`1s`, `500ms`, `250us`; default `1s`).
//! * `--trace <path>` — write a JSONL event trace of the Figure 7
//!   UDP/basic-access cell (one JSON object per MAC/PHY/TCP event).
//! * `--threads N` — worker threads per simulation run (sharded
//!   executor; results are byte-identical to serial).
//! * `--mobility waypoint:speed=S[,epoch=E]` or
//!   `--mobility trace:file=PATH[,epoch=E]` — set the four-station
//!   figures' stations in motion (random waypoint at `S` m/s, or
//!   piecewise-linear playback of a `seconds node x y` trace file); the
//!   JSON `engine` objects then carry per-run link-churn counters.
//!
//! Output sections are numbered after the paper's artifacts.
//!
//! # `repro sweep`
//!
//! `cargo run --release --bin repro -- sweep [FLAGS]` runs the paper's
//! four-station figures across a **seed population in parallel** and
//! prints seed-aggregated statistics (mean ± 95% CI over seeds) instead
//! of one channel draw:
//!
//! * `--scenarios fig7,fig9,fig11,fig12` — which figures (default: all
//!   four; each contributes 4 cells: UDP/TCP × basic/RTS).
//! * `--seeds A..B` or `--seeds N` (= `1..N`) — seed range, inclusive
//!   (default `1..8`).
//! * `--jobs N` — sweep worker threads (default: all cores).
//! * `--threads N` — worker threads *inside* each run (sharded
//!   executor; default 1). The runner clamps jobs × threads to the
//!   machine's parallelism.
//! * `--cache-dir <dir>` — content-addressed run cache: finished cells
//!   are never recomputed, a fully warm re-run simulates zero worlds.
//! * `--json <path>` — write the full machine-readable `SweepReport`.
//! * `--quick` — 4 s sessions instead of 20 s.
//! * `--duration <interval>` / `--warmup <interval>` — explicit run
//!   length (e.g. `300ms`; overrides `--quick`).

use desim::SimDuration;
use dot11_adhoc::analytic::{
    overhead_breakdown, table2, AccessScheme, Dot11bParams, TransportKind,
};
use dot11_adhoc::experiments::four_station::{
    self, figure11, figure12, figure7, figure9, FourStationCell, FourStationLayout,
    SessionTransport,
};
use dot11_adhoc::experiments::{figure2, figure3, figure4, table3, ExpConfig};
use dot11_adhoc::range::estimate_crossing;
use dot11_adhoc::EngineStats;
use dot11_phy::{PhyRate, Preamble};
use dot11_trace::{IntervalMetricsSink, IntervalRow, JsonlSink, SharedSink};

struct Opts {
    quick: bool,
    trace: Option<String>,
    json: Option<String>,
    metrics: SimDuration,
    threads: usize,
    /// `--mobility` raw spec + parsed config: sets the four-station
    /// figures' stations in motion (off by default, so the static
    /// outputs stay byte-identical).
    mobility: Option<(String, dot11_adhoc::MobilityConfig)>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        trace: None,
        json: None,
        metrics: SimDuration::from_secs(1),
        threads: 1,
        mobility: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a count"));
                opts.threads = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage(&format!("bad thread count {v:?}")));
            }
            "--trace" => {
                opts.trace = Some(args.next().unwrap_or_else(|| usage("--trace needs a path")))
            }
            "--json" => {
                opts.json = Some(args.next().unwrap_or_else(|| usage("--json needs a path")))
            }
            "--metrics" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--metrics needs an interval"));
                opts.metrics = parse_interval(&v).unwrap_or_else(|| {
                    usage(&format!("bad interval {v:?} (try 1s, 500ms, 250us)"))
                });
            }
            "--mobility" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--mobility needs a model spec"));
                opts.mobility = Some((v.clone(), parse_mobility(&v)));
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    opts
}

fn usage(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!(
        "usage: repro [--quick] [--threads N] [--json <path>] [--metrics <interval>] \
         [--trace <path>] [--mobility waypoint:speed=S[,epoch=E] | trace:file=PATH[,epoch=E]]"
    );
    std::process::exit(2);
}

/// Parses a `--mobility` spec: `waypoint:speed=50[,epoch=250ms]` (random
/// waypoint on the topology's bounding disk at `speed` m/s) or
/// `trace:file=walk.txt[,epoch=100ms]` (piecewise-linear playback of a
/// `seconds node x y` trace file). Exits with usage on any malformed
/// spec so a typo never silently runs static.
fn parse_mobility(spec: &str) -> dot11_adhoc::MobilityConfig {
    use dot11_adhoc::mobility::parse_trace;
    use dot11_adhoc::MobilityConfig;
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    let mut speed = None;
    let mut file = None;
    let mut epoch = None;
    for part in rest.split(',').filter(|p| !p.is_empty()) {
        let Some((k, v)) = part.split_once('=') else {
            usage(&format!(
                "bad --mobility parameter {part:?} (want key=value)"
            ));
        };
        match k {
            "speed" => {
                speed = Some(
                    v.parse::<f64>()
                        .ok()
                        .filter(|s| s.is_finite() && *s > 0.0)
                        .unwrap_or_else(|| usage(&format!("bad --mobility speed {v:?}"))),
                )
            }
            "file" => file = Some(v.to_owned()),
            "epoch" => {
                epoch = Some(
                    parse_interval(v)
                        .unwrap_or_else(|| usage(&format!("bad --mobility epoch {v:?}"))),
                )
            }
            other => usage(&format!(
                "unknown --mobility key {other:?} (try speed, file, epoch)"
            )),
        }
    }
    let mut config = match kind {
        "waypoint" => MobilityConfig::waypoint(
            speed.unwrap_or_else(|| usage("--mobility waypoint needs speed=<m/s>")),
        ),
        "trace" => {
            let path = file.unwrap_or_else(|| usage("--mobility trace needs file=<path>"));
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("repro: reading mobility trace {path}: {e}");
                std::process::exit(1);
            });
            MobilityConfig::trace(
                parse_trace(&text)
                    .unwrap_or_else(|e| usage(&format!("mobility trace {path}: {e}"))),
            )
        }
        other => usage(&format!(
            "unknown mobility model {other:?} (try waypoint, trace)"
        )),
    };
    if let Some(e) = epoch {
        config = config.with_epoch(e);
    }
    config
}

/// Parses `1s` / `500ms` / `250us` / `100ns` (a bare number means
/// seconds) into a positive duration.
fn parse_interval(s: &str) -> Option<SimDuration> {
    let split = s.find(|c: char| c.is_alphabetic()).unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let v: f64 = num.parse().ok()?;
    let ns = match unit {
        "" | "s" => v * 1e9,
        "ms" => v * 1e6,
        "us" | "µs" => v * 1e3,
        "ns" => v,
        _ => return None,
    };
    if !ns.is_finite() || ns < 1.0 {
        return None;
    }
    Some(SimDuration::from_nanos(ns.round() as u64))
}

mod analyze;

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("sweep") => {
            sweep_main(std::env::args().skip(2).collect());
            return;
        }
        Some("analyze") => {
            analyze::analyze_main(std::env::args().skip(2).collect());
            return;
        }
        _ => {}
    }
    let opts = parse_args();
    let cfg = if opts.quick {
        ExpConfig::quick()
    } else {
        ExpConfig::full()
    }
    .with_threads(opts.threads);
    println!("Reproduction of: IEEE 802.11 Ad Hoc Networks: Performance Measurements");
    println!("(Anastasi, Borgia, Conti, Gregori — ICDCS-W 2003)");
    println!(
        "Sessions: {} per measurement, seed {}\n",
        cfg.duration, cfg.seed
    );

    table1();
    figure1();
    print_table2();
    print_figure2(cfg);
    print_figure3(cfg);
    print_figure4(cfg);
    print_table3(cfg);
    if opts.json.is_some() || opts.mobility.is_some() {
        // Instrumented path: rerun each four-station cell with an
        // interval-metrics sink so the JSON report carries the
        // throughput-vs-time series next to the headline numbers.
        // `--mobility` rides the same path so its churn counters land in
        // the JSON `engine` objects.
        if let Some((spec, _)) = &opts.mobility {
            println!("Mobility: {spec} (four-station figures run with stations in motion)\n");
        }
        let mobility = opts.mobility.as_ref().map(|(_, m)| m);
        let figures = run_instrumented_figures(cfg, opts.metrics, mobility);
        for f in &figures {
            print_four_station(f.title, f.cells.iter().map(|c| c.cell).collect());
        }
        if let Some(path) = opts.json.as_deref() {
            match std::fs::write(path, report_json(cfg, opts.metrics, &figures)) {
                Ok(()) => println!("JSON report written to {path}"),
                Err(e) => {
                    eprintln!("repro: writing {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    } else {
        print_four_station(FIG7_TITLE, figure7(cfg));
        print_four_station(FIG9_TITLE, figure9(cfg));
        print_four_station(FIG11_TITLE, figure11(cfg));
        print_four_station(FIG12_TITLE, figure12(cfg));
    }
    if let Some(path) = &opts.trace {
        match write_trace(cfg, path) {
            Ok(lines) => println!("JSONL trace ({lines} events) written to {path}"),
            Err(e) => {
                eprintln!("repro: tracing to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

// --- the sweep subcommand -------------------------------------------------

struct SweepArgs {
    scenarios: Vec<(String, Vec<dot11_sweep::SweepScenario>)>,
    mac_axes: Vec<dot11_sweep::MacAxis>,
    seeds: std::ops::RangeInclusive<u64>,
    jobs: usize,
    cache_dir: Option<String>,
    json: Option<String>,
    progress: Option<String>,
    params: dot11_sweep::RunParams,
}

fn sweep_usage(msg: &str) -> ! {
    eprintln!("repro sweep: {msg}");
    eprintln!(
        "usage: repro sweep \
         [--scenarios fig7,fig9,fig11,fig12,chain16,chain64,grid16,disk20,disk4096,hidden3,\
mobile-disk64[-slow|-fast]] \
         [--mac-grid key=v1,v2,...] [--seeds A..B|N] [--jobs N] [--threads N] \
         [--cache-dir <dir>] [--json <path>] [--progress <path|->] [--quick] \
         [--duration <interval>] [--warmup <interval>]"
    );
    eprintln!(
        "  --mac-grid keys: policy (beb|fixedN|ctadapt), cwmin, cwmax, retry, longretry, \
         slot (µs); repeat the flag to cross dimensions, e.g. \
         --mac-grid cwmin=8,16,32,64 --mac-grid policy=beb,fixed32"
    );
    std::process::exit(2);
}

/// Expands one `--mac-grid key=v1,v2,...` dimension against the axes
/// accumulated so far (cross product across repeated flags).
fn parse_mac_grid(axes: Vec<dot11_sweep::MacAxis>, spec: &str) -> Vec<dot11_sweep::MacAxis> {
    use dot11_mac::{BackoffConfig, CtAdaptConfig};
    let Some((key, list)) = spec.split_once('=') else {
        sweep_usage(&format!("bad --mac-grid {spec:?} (want key=v1,v2,...)"));
    };
    let mut out = Vec::new();
    for &axis in &axes {
        for value in list.split(',') {
            let parse_u32 = || {
                value
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        sweep_usage(&format!("bad --mac-grid {key} value {value:?}"))
                    })
            };
            let mut axis = axis;
            match key {
                "policy" => {
                    axis.policy = if value == "beb" {
                        BackoffConfig::Beb
                    } else if value == "ctadapt" {
                        BackoffConfig::CtAdapt(CtAdaptConfig::default())
                    } else if let Some(cw) = value.strip_prefix("fixed") {
                        BackoffConfig::FixedCw(cw.parse().ok().filter(|&n| n >= 1).unwrap_or_else(
                            || sweep_usage(&format!("bad fixed-CW width in {value:?}")),
                        ))
                    } else {
                        sweep_usage(&format!(
                            "unknown policy {value:?} (try beb, fixedN, ctadapt)"
                        ));
                    };
                }
                "cwmin" => axis.cw_min = parse_u32(),
                "cwmax" => axis.cw_max = parse_u32(),
                "retry" => axis.short_retry = parse_u32(),
                "longretry" => axis.long_retry = parse_u32(),
                "slot" => axis.slot_us = parse_u32(),
                other => sweep_usage(&format!(
                    "unknown --mac-grid key {other:?} (try policy, cwmin, cwmax, retry, \
                     longretry, slot)"
                )),
            }
            if axis.cw_min > axis.cw_max {
                sweep_usage(&format!(
                    "CWmin {} exceeds CWmax {} in --mac-grid {spec}",
                    axis.cw_min, axis.cw_max
                ));
            }
            out.push(axis);
        }
    }
    out
}

/// Parses `A..B` (inclusive) or a bare `N` meaning `1..N`.
fn parse_seed_range(s: &str) -> Option<std::ops::RangeInclusive<u64>> {
    let range = match s.split_once("..") {
        Some((a, b)) => a.parse().ok()?..=b.parse().ok()?,
        None => 1..=s.parse().ok()?,
    };
    (!range.is_empty()).then_some(range)
}

fn parse_scenario_group(name: &str) -> Option<Vec<dot11_sweep::SweepScenario>> {
    use dot11_sweep::SweepScenario;
    match name {
        "fig7" => Some(SweepScenario::figure(7)),
        "fig9" => Some(SweepScenario::figure(9)),
        "fig11" => Some(SweepScenario::figure(11)),
        "fig12" => Some(SweepScenario::figure(12)),
        // Large-topology families (PR 5): multi-hop chains/grids at 80 m
        // pitch (a reliable 2 Mb/s hop per the calibrated Table 3 ranges)
        // and a 20-station random field.
        "chain16" => Some(vec![SweepScenario::Chain {
            n: 16,
            spacing_m: 80.0,
            rate: PhyRate::R2,
        }]),
        "chain64" => Some(vec![SweepScenario::Chain {
            n: 64,
            spacing_m: 80.0,
            rate: PhyRate::R2,
        }]),
        "grid16" => Some(vec![SweepScenario::Grid {
            rows: 4,
            cols: 4,
            spacing_m: 80.0,
            rate: PhyRate::R2,
        }]),
        "disk20" => Some(vec![SweepScenario::RandomDisk {
            n: 20,
            radius_m: 120.0,
            topo_seed: 7,
            rate: PhyRate::R2,
        }]),
        // Production-scale disk (PR 8): 4096 stations on a 12 km disk.
        // Audible-set culling plus the flat per-event hot path keep a
        // sweep over it tractable; CI smoke-runs it at --quick duration.
        "disk4096" => Some(vec![SweepScenario::RandomDisk {
            n: 4096,
            radius_m: 12_000.0,
            topo_seed: 7,
            rate: PhyRate::R2,
        }]),
        // The hidden-terminal triple (PR 7): basic access collapses,
        // RTS/CTS recovers.
        "hidden3" => Some(SweepScenario::hidden3()),
        // The mobile disk (PR 10): 64 stations random-waypoint walking on
        // a 120 m disk (the calibrated 2 Mb/s data range), epoch-committed link
        // state. The speed ladder makes throughput-vs-node-speed a one-flag sweep.
        "mobile-disk64" => Some(vec![SweepScenario::mobile_disk64(20.0)]),
        "mobile-disk64-slow" => Some(vec![SweepScenario::mobile_disk64(5.0)]),
        "mobile-disk64-fast" => Some(vec![SweepScenario::mobile_disk64(50.0)]),
        _ => None,
    }
}

fn parse_sweep_args(args: Vec<String>) -> SweepArgs {
    let mut out = SweepArgs {
        scenarios: Vec::new(),
        mac_axes: vec![dot11_sweep::MacAxis::table1()],
        seeds: 1..=8,
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cache_dir: None,
        json: None,
        progress: None,
        params: dot11_sweep::RunParams::full(),
    };
    let mut duration = None;
    let mut warmup = None;
    let mut quick = false;
    let mut threads = 1usize;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scenarios" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| sweep_usage("--scenarios needs a list"));
                for name in v.split(',') {
                    let group = parse_scenario_group(name).unwrap_or_else(|| {
                        sweep_usage(&format!(
                            "unknown scenario {name:?} (try fig7, fig9, fig11, fig12, \
                             chain16, chain64, grid16, disk20, disk4096, hidden3, \
                             mobile-disk64, mobile-disk64-slow, mobile-disk64-fast)"
                        ))
                    });
                    out.scenarios.push((name.to_owned(), group));
                }
            }
            "--mac-grid" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| sweep_usage("--mac-grid needs key=v1,v2,..."));
                out.mac_axes = parse_mac_grid(std::mem::take(&mut out.mac_axes), &v);
            }
            "--seeds" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| sweep_usage("--seeds needs a range"));
                out.seeds = parse_seed_range(&v)
                    .unwrap_or_else(|| sweep_usage(&format!("bad seed range {v:?} (try 1..30)")));
            }
            "--jobs" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| sweep_usage("--jobs needs a count"));
                out.jobs = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| sweep_usage(&format!("bad job count {v:?}")));
            }
            "--cache-dir" => {
                out.cache_dir = Some(
                    args.next()
                        .unwrap_or_else(|| sweep_usage("--cache-dir needs a path")),
                );
            }
            "--json" => {
                out.json = Some(
                    args.next()
                        .unwrap_or_else(|| sweep_usage("--json needs a path")),
                );
            }
            "--progress" => {
                out.progress =
                    Some(args.next().unwrap_or_else(|| {
                        sweep_usage("--progress needs a path (or - for stderr)")
                    }));
            }
            "--threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| sweep_usage("--threads needs a count"));
                threads = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| sweep_usage(&format!("bad thread count {v:?}")));
            }
            "--quick" => quick = true,
            "--duration" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| sweep_usage("--duration needs an interval"));
                duration = Some(
                    parse_interval(&v)
                        .unwrap_or_else(|| sweep_usage(&format!("bad interval {v:?}"))),
                );
            }
            "--warmup" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| sweep_usage("--warmup needs an interval"));
                warmup = Some(
                    parse_interval(&v)
                        .unwrap_or_else(|| sweep_usage(&format!("bad interval {v:?}"))),
                );
            }
            other => sweep_usage(&format!("unknown flag {other:?}")),
        }
    }
    if quick {
        out.params = dot11_sweep::RunParams::quick();
    }
    // Per-run worker threads (sharded executor). The runner clamps
    // jobs × threads to the machine's parallelism.
    out.params = out.params.with_threads(threads);
    if let Some(d) = duration {
        out.params.duration = d;
        // Keep the default warm-up valid for short explicit durations.
        if out.params.warmup >= d {
            out.params.warmup = SimDuration::from_nanos((d.as_nanos() / 4).max(1));
        }
    }
    if let Some(w) = warmup {
        out.params.warmup = w;
    }
    if out.params.warmup >= out.params.duration {
        sweep_usage("warmup must be shorter than duration");
    }
    if out.scenarios.is_empty() {
        for name in ["fig7", "fig9", "fig11", "fig12"] {
            out.scenarios
                .push((name.to_owned(), parse_scenario_group(name).expect("known")));
        }
    }
    out
}

fn sweep_main(args: Vec<String>) {
    let args = parse_sweep_args(args);
    let spec = dot11_sweep::SweepSpec::new(args.params)
        .scenarios(args.scenarios.iter().flat_map(|(_, g)| g.iter().copied()))
        .mac_axes(args.mac_axes.clone())
        .seeds(args.seeds.clone());
    let n_scenarios = spec.scenarios.len();
    let n_axes = spec.mac_axes.len();
    let n_seeds = spec.seeds.len();
    if n_axes > 1 {
        println!(
            "== SWEEP — {n_scenarios} scenario cells × {n_axes} MAC axes × {n_seeds} seeds \
             = {} runs ==",
            n_scenarios * n_axes * n_seeds
        );
    } else {
        println!(
            "== SWEEP — {n_scenarios} scenario cells × {n_seeds} seeds = {} runs ==",
            n_scenarios * n_seeds
        );
    }
    println!(
        "sessions: {} (warm-up {}), seeds {}..{}\n",
        args.params.duration,
        args.params.warmup,
        args.seeds.start(),
        args.seeds.end()
    );
    let progress = args.progress.as_deref().map(|dest| {
        let sink = if dest == "-" {
            // Stderr keeps stdout machine-comparable (the smoke tests
            // md5 it) while still letting `2>` capture the stream.
            dot11_sweep::ProgressSink::stderr()
        } else {
            match std::fs::File::create(dest) {
                Ok(f) => dot11_sweep::ProgressSink::new(Box::new(f)),
                Err(e) => {
                    eprintln!("repro sweep: opening progress stream {dest}: {e}");
                    std::process::exit(1);
                }
            }
        };
        std::sync::Arc::new(sink)
    });
    let opts = dot11_sweep::SweepOptions {
        jobs: args.jobs,
        cache_dir: args.cache_dir.clone().map(Into::into),
        progress,
    };
    let report = match dot11_sweep::run_sweep(&spec, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro sweep: {e}");
            std::process::exit(1);
        }
    };
    print_sweep_report(&report);
    if let Some(path) = &args.json {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("JSON sweep report written to {path}"),
            Err(e) => {
                eprintln!("repro sweep: writing {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn fmt_summary_kbps(s: &dot11_adhoc::Summary) -> String {
    format!("{:>6.0} ± {:<5.0}", s.mean, s.ci95)
}

fn print_sweep_report(report: &dot11_sweep::SweepReport) {
    println!(
        "{:<42} | {:>3} | {:>14} | {:>14} | {:>9} | {:>11} | chan util",
        "scenario (kb/s, mean ± 95% CI over seeds)",
        "n",
        "session 1",
        "session 2",
        "imbalance",
        "fairness"
    );
    for g in &report.groups {
        let s2 = g
            .flows_kbps
            .get(1)
            .map(fmt_summary_kbps)
            .unwrap_or_else(|| format!("{:>14}", "—"));
        let imbalance = g
            .imbalance()
            .map(|r| format!("{r:>8.2}x"))
            .unwrap_or_else(|| format!("{:>9}", "—"));
        println!(
            "{:<42} | {:>3} | {} | {} | {} | {:>5.2} ± {:.2} | {:>5.1}%",
            g.label,
            g.total_kbps.n,
            fmt_summary_kbps(&g.flows_kbps[0]),
            s2,
            imbalance,
            g.fairness.mean,
            g.fairness.ci95,
            100.0 * g.chan_util.mean
        );
    }
    let e = &report.engine;
    println!(
        "\nengine: {} jobs | {} simulated, {} cached | wall {:.2} s | \
         {:.0}x aggregate sim/wall | {:.0}% mean worker utilization",
        e.jobs,
        e.simulated,
        e.cached,
        e.wall.as_secs_f64(),
        e.speedup(),
        100.0 * e.mean_utilization()
    );
    for w in &e.workers {
        println!(
            "  worker {:>2}: {:>3} cells | {:>9} events | busy {:.2} s ({:.0}%)",
            w.worker,
            w.cells,
            w.events,
            w.busy.as_secs_f64(),
            100.0 * w.utilization(e.wall)
        );
    }
}

const FIG7_TITLE: &str = "FIGURE 7 — asymmetric scenario, 11 Mb/s (d = 25/82.5/25 m)";
const FIG9_TITLE: &str = "FIGURE 9 — asymmetric scenario, 2 Mb/s (d = 25/92.5/25 m)";
const FIG11_TITLE: &str = "FIGURE 11 — symmetric scenario, 11 Mb/s (d = 25/62.5/25 m)";
const FIG12_TITLE: &str = "FIGURE 12 — symmetric scenario, 2 Mb/s (d = 25/62.5/25 m)";

struct InstrumentedCell {
    cell: FourStationCell,
    engine: EngineStats,
    intervals: Vec<IntervalRow>,
}

struct InstrumentedFigure {
    figure: u32,
    title: &'static str,
    rate: PhyRate,
    cells: Vec<InstrumentedCell>,
}

fn run_instrumented_figures(
    cfg: ExpConfig,
    interval: SimDuration,
    mobility: Option<&dot11_adhoc::MobilityConfig>,
) -> Vec<InstrumentedFigure> {
    let specs = [
        (
            7,
            FIG7_TITLE,
            PhyRate::R11,
            FourStationLayout::AsymmetricAt11,
        ),
        (9, FIG9_TITLE, PhyRate::R2, FourStationLayout::AsymmetricAt2),
        (11, FIG11_TITLE, PhyRate::R11, FourStationLayout::Symmetric),
        (12, FIG12_TITLE, PhyRate::R2, FourStationLayout::Symmetric),
    ];
    specs
        .into_iter()
        .map(|(figure, title, rate, layout)| {
            let mut cells = Vec::with_capacity(4);
            for transport in [SessionTransport::Udp, SessionTransport::Tcp] {
                for scheme in [AccessScheme::Basic, AccessScheme::RtsCts] {
                    let sink = SharedSink::new(IntervalMetricsSink::new(interval));
                    // The instrumented path arms the wall-clock profiler:
                    // the per-kind timing lands in the JSON `engine`
                    // objects without touching physics (probe callbacks
                    // only read the monotonic clock).
                    let mut scenario = four_station::scenario(cfg, rate, layout, transport, scheme);
                    if let Some(m) = mobility {
                        scenario = scenario.with_mobility(m.clone());
                    }
                    let report = scenario.run_probed(
                        sink.clone(),
                        desim::WallProbe::new(&dot11_adhoc::world::PROBE_SCOPES),
                    );
                    cells.push(InstrumentedCell {
                        cell: FourStationCell {
                            transport,
                            scheme,
                            session1_kbps: report.flow(dot11_net::FlowId(0)).throughput_kbps,
                            session2_kbps: report.flow(dot11_net::FlowId(1)).throughput_kbps,
                        },
                        engine: report.engine,
                        intervals: sink.take().into_rows(),
                    });
                }
            }
            InstrumentedFigure {
                figure,
                title,
                rate,
                cells,
            }
        })
        .collect()
}

fn engine_json(e: &EngineStats) -> String {
    // The per-kind histogram makes event-budget regressions attributable:
    // `kinds` sums to `events`, so a count creeping back up points straight
    // at the timer or signal class responsible.
    let kinds: Vec<String> = e
        .kinds
        .iter_named()
        .iter()
        .map(|(name, count)| format!("\"{name}\":{count}"))
        .collect();
    // When a profiler was armed, its per-scope wall-time breakdown rides
    // along: `scopes` carries every named scope (kind scopes partition
    // the dispatch loop; `phase_*` scopes are overlapping sub-regions —
    // don't sum them with the kinds), and `attributed_pct` is the share
    // of total wall time the kind scopes explain.
    let profile = match (&e.profile, e.attributed_fraction()) {
        (Some(p), Some(frac)) => {
            let scopes: Vec<String> = p
                .scopes
                .iter()
                .map(|s| {
                    format!(
                        "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\
                         \"min_ns\":{},\"max_ns\":{}}}",
                        s.name, s.count, s.total_ns, s.min_ns, s.max_ns
                    )
                })
                .collect();
            format!(
                ",\"profile\":{{\"attributed_pct\":{:.1},\"scopes\":[{}]}}",
                100.0 * frac,
                scopes.join(",")
            )
        }
        _ => String::new(),
    };
    // Link-churn counters ride along only for mobile runs: static runs
    // never commit an epoch, and omitting the block keeps their JSON
    // byte-identical to the pre-mobility format.
    let mobility = if e.mobility.epochs > 0 {
        let m = &e.mobility;
        format!(
            ",\"mobility\":{{\"epochs\":{},\"stations_moved\":{},\"slices_recomputed\":{},\
             \"links_dirtied\":{},\"links_recomputed\":{},\"audible_added\":{},\
             \"audible_removed\":{}}}",
            m.epochs,
            m.stations_moved,
            m.slices_recomputed,
            m.links_dirtied,
            m.links_recomputed,
            m.audible_added,
            m.audible_removed
        )
    } else {
        String::new()
    };
    format!(
        "{{\"events\":{},\"queue_high_water\":{},\"sim_elapsed_ns\":{},\"wall_ns\":{},\
         \"speedup\":{:.1},\"events_per_sec\":{:.0},\"kinds\":{{{}}}{mobility}{profile}}}",
        e.events,
        e.queue_high_water,
        e.sim_elapsed.as_nanos(),
        e.wall.as_nanos(),
        e.speedup(),
        e.events_per_sec(),
        kinds.join(",")
    )
}

fn report_json(cfg: ExpConfig, interval: SimDuration, figures: &[InstrumentedFigure]) -> String {
    let mut s = format!(
        "{{\"meta\":{{\"paper\":\"IEEE 802.11 Ad Hoc Networks: Performance Measurements\",\
         \"seed\":{},\"duration_ns\":{},\"warmup_ns\":{},\"metrics_interval_ns\":{}}},\
         \"four_station\":[",
        cfg.seed,
        cfg.duration.as_nanos(),
        cfg.warmup.as_nanos(),
        interval.as_nanos()
    );
    for (i, f) in figures.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"figure\":{},\"rate_kbps\":{},\"cells\":[",
            f.figure,
            (f.rate.bits_per_sec() / 1000.0) as u32
        ));
        for (j, c) in f.cells.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let transport = match c.cell.transport {
                SessionTransport::Udp => "udp",
                SessionTransport::Tcp => "tcp",
            };
            let scheme = match c.cell.scheme {
                AccessScheme::Basic => "basic",
                AccessScheme::RtsCts => "rts_cts",
            };
            s.push_str(&format!(
                "{{\"transport\":\"{transport}\",\"scheme\":\"{scheme}\",\
                 \"session1_kbps\":{:.3},\"session2_kbps\":{:.3},\"engine\":{},\"intervals\":[",
                c.cell.session1_kbps,
                c.cell.session2_kbps,
                engine_json(&c.engine)
            ));
            for (k, row) in c.intervals.iter().enumerate() {
                if k > 0 {
                    s.push(',');
                }
                s.push_str(&row.to_json());
            }
            s.push_str("]}");
        }
        s.push_str("]}");
    }
    s.push_str("]}\n");
    s
}

fn write_trace(cfg: ExpConfig, path: &str) -> std::io::Result<u64> {
    let sink = SharedSink::new(JsonlSink::create(path)?);
    let _ = four_station::scenario(
        cfg,
        PhyRate::R11,
        FourStationLayout::AsymmetricAt11,
        SessionTransport::Udp,
        AccessScheme::Basic,
    )
    .run_with(sink.clone());
    let jsonl = sink.take();
    let lines = jsonl.lines();
    jsonl.into_inner()?;
    Ok(lines)
}

fn table1() {
    let p = Dot11bParams::table1();
    println!("== TABLE 1 — IEEE 802.11b parameter values ==");
    println!(
        "Slot {} us | tau {} us | PHYhdr {} bits | MAChdr {} bits | SIFS {} us | DIFS {} us",
        p.slot_us, p.tau_us, p.phy_hdr_bits, p.mac_hdr_bits, p.sifs_us, p.difs_us
    );
    println!(
        "ACK {} bits + PHYhdr | CWmin {} slots | CWmax {} slots | rates 1, 2, 5.5, 11 Mb/s\n",
        p.ack_bits, p.cw_min, p.cw_max
    );
}

fn figure1() {
    println!("== FIGURE 1 — encapsulation overheads (m = 512 B) ==");
    println!(
        "{:>9} | {:>9} | {:>6} | {:>6} | {:>8} | payload airtime",
        "transport", "data rate", "IP", "MPDU", "airtime"
    );
    for (t, label) in [(TransportKind::Udp, "UDP"), (TransportKind::Tcp, "TCP")] {
        for rate in [PhyRate::R11, PhyRate::R1] {
            let b = overhead_breakdown(512, t, rate, Preamble::Long);
            println!(
                "{label:>9} | {rate:>9} | {:>4} B | {:>4} B | {:>6.0} us | {:>5.1}%",
                b.ip_bytes,
                b.mpdu_bytes,
                b.total_us(),
                100.0 * b.payload_airtime_fraction()
            );
        }
    }
    println!();
}

fn print_table2() {
    println!("== TABLE 2 — maximum throughput (Mb/s), analytic ==");
    println!("            |     m = 512 B      |     m = 1024 B");
    println!("  data rate | no RTS/CTS RTS/CTS | no RTS/CTS RTS/CTS");
    for row in table2() {
        println!(
            "{:>11} |  {:>8.3} {:>8.3} |  {:>8.3} {:>8.3}",
            row.rate.to_string(),
            row.m512_basic,
            row.m512_rts,
            row.m1024_basic,
            row.m1024_rts
        );
    }
    println!("(paper prints 0.738 for 1 Mb/s / 512 B / RTS-CTS; that cell is");
    println!(" inconsistent with the other 15 — see EXPERIMENTS.md)\n");
}

fn print_figure2(cfg: ExpConfig) {
    println!("== FIGURE 2 — ideal vs measured throughput, 11 Mb/s, m = 512 B ==");
    println!(
        "{:>10} | {:>9} | {:>9} | {:>9}",
        "scheme", "ideal", "real UDP", "real TCP"
    );
    for row in figure2::figure2(cfg) {
        println!(
            "{:>10} | {:>7.3} M | {:>7.3} M | {:>7.3} M",
            row.scheme.to_string(),
            row.ideal_mbps,
            row.udp_mbps,
            row.tcp_mbps
        );
    }
    println!("(ideal = Eq. (1)/(2) with every term included)\n");
}

fn print_figure3(cfg: ExpConfig) {
    println!("== FIGURE 3 — packet loss vs distance per data rate ==");
    let curves = figure3::figure3(cfg);
    print!("{:>8} |", "d (m)");
    for c in &curves {
        print!(" {:>8}", c.rate.to_string());
    }
    println!();
    for (i, &d) in figure3::DISTANCES_M.iter().enumerate() {
        print!("{d:>8.0} |");
        for c in &curves {
            print!(" {:>8.2}", c.curve.points()[i].1);
        }
        println!();
    }
    println!();
}

fn print_figure4(cfg: ExpConfig) {
    println!("== FIGURE 4 — 1 Mb/s transmission range on different days ==");
    let curves = figure4::figure4(cfg);
    print!("{:>8} |", "d (m)");
    for c in &curves {
        print!(" {:>20}", c.day);
    }
    println!();
    for (i, &d) in figure4::DISTANCES_M.iter().enumerate() {
        print!("{d:>8.0} |");
        for c in &curves {
            print!(" {:>20.2}", c.curve.points()[i].1);
        }
        println!();
    }
    for c in &curves {
        match estimate_crossing(&c.curve, 0.5) {
            Some(r) => println!("  {}: 50% loss at ~{r:.0} m", c.day),
            None => println!("  {}: still connected at 160 m", c.day),
        }
    }
    println!();
}

fn print_table3(cfg: ExpConfig) {
    println!("== TABLE 3 — transmission-range estimates ==");
    println!(
        "{:>14} | {:>9} | {:>9} | {:>9} | {:>9}",
        "", "11 Mb/s", "5.5 Mb/s", "2 Mb/s", "1 Mb/s"
    );
    let entries = table3::table3(cfg);
    let fmt = |r: Option<f64>| match r {
        Some(m) => format!("{m:>6.0} m"),
        None => ">150 m".to_owned(),
    };
    print!("{:>14} |", "data range");
    for e in entries.iter().rev() {
        print!(" {:>9} |", fmt(e.data_range_m));
    }
    println!();
    print!("{:>14} |", "control range");
    for e in entries.iter().rev() {
        print!(" {:>9} |", fmt(e.control_range_m));
    }
    println!(
        "\n(paper: data 30 / 70 / 90-100 / 110-130 m; control 90 m at 2 Mb/s, 120 m at 1 Mb/s)\n"
    );
}

fn print_four_station(title: &str, cells: Vec<FourStationCell>) {
    println!("== {title} ==");
    println!(
        "{:>9} | {:>10} | {:>12} | {:>12} | imbalance",
        "transport", "scheme", "S1->S2", "S3->S4"
    );
    for c in &cells {
        println!(
            "{:>9} | {:>10} | {:>8.0} kb/s | {:>8.0} kb/s | {:>6.2}x",
            c.transport.to_string(),
            c.scheme.to_string(),
            c.session1_kbps,
            c.session2_kbps,
            c.imbalance()
        );
    }
    println!();
}
