//! `repro analyze` — post-mortem of a `--trace` JSONL stream.
//!
//! Reads the per-event trace the simulator wrote (one JSON object per
//! MAC/PHY/TCP event, see `dot11-trace`) and aggregates the two things
//! the raw stream is worst at showing directly:
//!
//! * **per-station retry chains** — how many times each station had to
//!   re-arm a frame before it got through (or gave up), summarized as
//!   chain count / mean / max;
//! * **collision attribution** — each `collision` event is matched
//!   against the frames on the air at that instant (reconstructed from
//!   `frame_tx_start` + `air_ns` intervals), so the report names the
//!   *pairs of transmitters* whose frames overlapped instead of just
//!   counting victims.

use dot11_sweep::json::{self, JsonValue};

/// Slack added to a frame's on-air interval when matching collisions,
/// covering propagation delay (sub-µs at the paper's ranges) between a
/// transmitter's clock and the victim's arrival timestamp.
const PROP_SLACK_NS: u64 = 2_000;

/// One parsed trace line — only the fields the analyzer uses.
struct Ev {
    t: u64,
    ev: String,
    node: Option<u32>,
    kind: Option<String>,
    retry: Option<u32>,
    slots: Option<u32>,
    cw: Option<u32>,
    air_ns: Option<u64>,
}

fn field_u32(obj: &[(String, JsonValue)], name: &str) -> Option<u32> {
    json::get_f64(obj, name).map(|v| v as u32)
}

fn parse_line(line: &str) -> Option<Ev> {
    let value = json::parse(line).ok()?;
    let obj = value.as_object()?;
    Some(Ev {
        t: json::get_f64(obj, "t")? as u64,
        ev: json::get_str(obj, "ev")?.to_owned(),
        node: field_u32(obj, "node"),
        kind: json::get_str(obj, "kind").map(str::to_owned),
        retry: field_u32(obj, "retry"),
        slots: field_u32(obj, "slots"),
        cw: field_u32(obj, "cw"),
        air_ns: json::get_f64(obj, "air_ns").map(|v| v as u64),
    })
}

/// Per-station aggregates.
#[derive(Debug, Clone, Default)]
struct StationStats {
    tx_data: u64,
    tx_ctrl: u64,
    air_ns: u64,
    rx_ok: u64,
    rx_err: u64,
    collisions: u64,
    eifs: u64,
    queue_drops: u64,
    backoffs: u64,
    backoff_slots: u64,
    cw_max_seen: u32,
    retries: u64,
    /// Closed retry chains: the final retry count each unlucky frame
    /// reached before success or drop.
    chains: Vec<u32>,
    /// High-water retry of the chain currently open (0 = none).
    open_chain: u32,
}

impl StationStats {
    fn note_retry(&mut self, retry: u32) {
        self.retries += 1;
        // `retry` counts up within one frame's lifetime; a reset to 1
        // means the previous frame's chain ended and a new one began.
        if retry <= self.open_chain {
            self.chains.push(self.open_chain);
        }
        self.open_chain = retry;
    }

    fn close_chain(&mut self) {
        if self.open_chain > 0 {
            self.chains.push(self.open_chain);
            self.open_chain = 0;
        }
    }

    fn mean_chain(&self) -> f64 {
        if self.chains.is_empty() {
            return 0.0;
        }
        self.chains.iter().map(|&c| c as u64).sum::<u64>() as f64 / self.chains.len() as f64
    }

    fn max_chain(&self) -> u32 {
        self.chains.iter().copied().max().unwrap_or(0)
    }

    fn mean_backoff(&self) -> f64 {
        if self.backoffs == 0 {
            return 0.0;
        }
        self.backoff_slots as f64 / self.backoffs as f64
    }
}

/// The full analysis of one trace.
#[derive(Debug, Default)]
pub struct TraceAnalysis {
    lines: u64,
    skipped: u64,
    horizon_ns: u64,
    stations: Vec<StationStats>,
    /// `(tx a, tx b) -> overlapping-frame collision count`, a < b.
    pair_counts: Vec<((u32, u32), u64)>,
    /// Collisions with no reconstructable overlap (e.g. victim was
    /// itself transmitting and only one frame was on the air).
    unattributed: u64,
}

impl TraceAnalysis {
    fn station(&mut self, node: u32) -> &mut StationStats {
        let idx = node as usize;
        if idx >= self.stations.len() {
            self.stations.resize(idx + 1, StationStats::default());
        }
        &mut self.stations[idx]
    }

    fn count_pair(&mut self, a: u32, b: u32) {
        let key = (a.min(b), a.max(b));
        match self.pair_counts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => *n += 1,
            None => self.pair_counts.push((key, 1)),
        }
    }

    /// Parses and aggregates a whole JSONL stream.
    pub fn from_jsonl(text: &str) -> TraceAnalysis {
        let mut a = TraceAnalysis::default();
        // Frames currently (or recently) on the air: (tx node, start, end).
        let mut on_air: Vec<(u32, u64, u64)> = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            a.lines += 1;
            let Some(ev) = parse_line(line) else {
                a.skipped += 1;
                continue;
            };
            a.horizon_ns = a.horizon_ns.max(ev.t);
            on_air.retain(|&(_, _, end)| end + PROP_SLACK_NS >= ev.t);
            let node = ev.node.unwrap_or(0);
            match ev.ev.as_str() {
                "frame_tx_start" => {
                    let air = ev.air_ns.unwrap_or(0);
                    on_air.push((node, ev.t, ev.t + air));
                    let s = a.station(node);
                    s.air_ns += air;
                    if ev.kind.as_deref() == Some("data") {
                        s.tx_data += 1;
                    } else {
                        s.tx_ctrl += 1;
                    }
                }
                "frame_rx_ok" => a.station(node).rx_ok += 1,
                "frame_rx_err" => a.station(node).rx_err += 1,
                "collision" => {
                    a.station(node).collisions += 1;
                    // Reconstruct which transmissions overlapped at the
                    // victim: every frame on the air at `t` except the
                    // victim's own.
                    let others: Vec<u32> = on_air
                        .iter()
                        .filter(|&&(tx, start, end)| {
                            tx != node && start <= ev.t && ev.t <= end + PROP_SLACK_NS
                        })
                        .map(|&(tx, _, _)| tx)
                        .collect();
                    if others.len() >= 2 {
                        // Every pair of frames simultaneously audible at
                        // the victim shares the blame.
                        for i in 0..others.len() {
                            for j in (i + 1)..others.len() {
                                a.count_pair(others[i], others[j]);
                            }
                        }
                    } else {
                        a.unattributed += 1;
                    }
                }
                "backoff_chosen" => {
                    let s = a.station(node);
                    s.backoffs += 1;
                    s.backoff_slots += u64::from(ev.slots.unwrap_or(0));
                    s.cw_max_seen = s.cw_max_seen.max(ev.cw.unwrap_or(0));
                }
                "frame_retry" => a.station(node).note_retry(ev.retry.unwrap_or(1)),
                "eifs_defer" => a.station(node).eifs += 1,
                "queue_drop" => a.station(node).queue_drops += 1,
                _ => {}
            }
        }
        for s in &mut a.stations {
            s.close_chain();
        }
        a.pair_counts
            .sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        a
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== TRACE ANALYSIS — {} events over {:.3} s ({} unparseable) ==",
            self.lines,
            self.horizon_ns as f64 / 1e9,
            self.skipped
        );
        let _ = writeln!(
            out,
            "{:>7} | {:>7} {:>6} | {:>8} | {:>6} {:>6} | {:>9} | {:>14} | {:>10} | {:>5}",
            "station",
            "data",
            "ctrl",
            "air (ms)",
            "rx ok",
            "rx err",
            "collision",
            "retry chains",
            "mean/max",
            "eifs"
        );
        for (i, s) in self.stations.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>7} | {:>7} {:>6} | {:>8.1} | {:>6} {:>6} | {:>9} | {:>5} ({:>4} rt) | {:>4.1} / {:>3} | {:>5}",
                i,
                s.tx_data,
                s.tx_ctrl,
                s.air_ns as f64 / 1e6,
                s.rx_ok,
                s.rx_err,
                s.collisions,
                s.chains.len(),
                s.retries,
                s.mean_chain(),
                s.max_chain(),
                s.eifs
            );
        }
        let _ = writeln!(out, "\nbackoff behaviour:");
        for (i, s) in self.stations.iter().enumerate() {
            if s.backoffs > 0 {
                let _ = writeln!(
                    out,
                    "  station {i}: {} draws, mean {:.1} slots, cw reached {}{}",
                    s.backoffs,
                    s.mean_backoff(),
                    s.cw_max_seen,
                    if s.queue_drops > 0 {
                        format!(", {} queue drops", s.queue_drops)
                    } else {
                        String::new()
                    }
                );
            }
        }
        let _ = writeln!(
            out,
            "\ncollision attribution (overlapping transmitter pairs):"
        );
        if self.pair_counts.is_empty() {
            let _ = writeln!(out, "  none attributable");
        }
        for ((x, y), n) in self.pair_counts.iter().take(10) {
            let _ = writeln!(out, "  stations {x} <-> {y}: {n} overlap collisions");
        }
        if self.unattributed > 0 {
            let _ = writeln!(
                out,
                "  ({} collision events had < 2 reconstructable overlapping frames)",
                self.unattributed
            );
        }
        out
    }
}

/// Entry point for `repro analyze <trace.jsonl>`.
pub fn analyze_main(args: Vec<String>) {
    let path = match args.as_slice() {
        [p] => p.clone(),
        _ => {
            eprintln!("usage: repro analyze <trace.jsonl>");
            eprintln!("  (produce a trace with: repro --quick --trace <path>)");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("repro analyze: reading {path}: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", TraceAnalysis::from_jsonl(&text).render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_chains_split_on_reset() {
        let trace = "\
{\"t\":1,\"ev\":\"frame_retry\",\"node\":0,\"retry\":1}
{\"t\":2,\"ev\":\"frame_retry\",\"node\":0,\"retry\":2}
{\"t\":3,\"ev\":\"frame_retry\",\"node\":0,\"retry\":3}
{\"t\":4,\"ev\":\"frame_retry\",\"node\":0,\"retry\":1}
{\"t\":5,\"ev\":\"frame_retry\",\"node\":1,\"retry\":1}
";
        let a = TraceAnalysis::from_jsonl(trace);
        assert_eq!(a.stations[0].chains, vec![3, 1], "chain of 3, then open 1");
        assert_eq!(a.stations[0].retries, 4);
        assert_eq!(a.stations[1].chains, vec![1]);
    }

    #[test]
    fn collisions_attribute_to_overlapping_transmitters() {
        // Stations 1 and 2 both on the air when station 0 reports the
        // collision; station 3's frame ended long before.
        let trace = "\
{\"t\":1000,\"ev\":\"frame_tx_start\",\"node\":3,\"kind\":\"data\",\"dst\":0,\"bytes\":512,\"rate_kbps\":11000,\"air_ns\":500}
{\"t\":10000,\"ev\":\"frame_tx_start\",\"node\":1,\"kind\":\"data\",\"dst\":0,\"bytes\":512,\"rate_kbps\":11000,\"air_ns\":400000}
{\"t\":10500,\"ev\":\"frame_tx_start\",\"node\":2,\"kind\":\"rts\",\"dst\":0,\"bytes\":20,\"rate_kbps\":2000,\"air_ns\":272000}
{\"t\":10700,\"ev\":\"collision\",\"node\":0}
";
        let a = TraceAnalysis::from_jsonl(trace);
        assert_eq!(a.pair_counts, vec![((1, 2), 1)]);
        assert_eq!(a.unattributed, 0);
        assert_eq!(a.stations[0].collisions, 1);
        assert_eq!(a.stations[1].tx_data, 1);
        assert_eq!(a.stations[2].tx_ctrl, 1);
    }

    #[test]
    fn lone_transmitter_collision_is_unattributed() {
        let trace = "\
{\"t\":100,\"ev\":\"frame_tx_start\",\"node\":1,\"kind\":\"data\",\"dst\":2,\"bytes\":512,\"rate_kbps\":11000,\"air_ns\":400000}
{\"t\":200,\"ev\":\"collision\",\"node\":1}
";
        let a = TraceAnalysis::from_jsonl(trace);
        assert!(a.pair_counts.is_empty());
        assert_eq!(a.unattributed, 1);
    }

    #[test]
    fn garbage_lines_are_counted_not_fatal() {
        let a = TraceAnalysis::from_jsonl("not json\n{\"t\":5,\"ev\":\"collision\",\"node\":0}\n");
        assert_eq!(a.lines, 2);
        assert_eq!(a.skipped, 1);
        assert_eq!(a.stations[0].collisions, 1);
    }

    #[test]
    fn render_names_top_pairs() {
        let trace = "\
{\"t\":10,\"ev\":\"frame_tx_start\",\"node\":1,\"kind\":\"data\",\"dst\":0,\"bytes\":512,\"rate_kbps\":11000,\"air_ns\":1000}
{\"t\":20,\"ev\":\"frame_tx_start\",\"node\":2,\"kind\":\"data\",\"dst\":0,\"bytes\":512,\"rate_kbps\":11000,\"air_ns\":1000}
{\"t\":30,\"ev\":\"collision\",\"node\":0}
";
        let out = TraceAnalysis::from_jsonl(trace).render();
        assert!(
            out.contains("stations 1 <-> 2: 1 overlap collisions"),
            "{out}"
        );
    }
}
