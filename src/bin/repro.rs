//! Regenerates every table and figure of the paper as text.
//!
//! Usage: `cargo run --release --bin repro [-- --quick]`
//!
//! `--quick` runs 4 s sessions instead of 20 s (same shapes, less
//! confidence). Output sections are numbered after the paper's artifacts.

use dot11_adhoc::analytic::{overhead_breakdown, table2, Dot11bParams, TransportKind};
use dot11_adhoc::experiments::four_station::{figure11, figure12, figure7, figure9, FourStationCell};
use dot11_adhoc::experiments::{figure2, figure3, figure4, table3, ExpConfig};
use dot11_adhoc::range::estimate_crossing;
use dot11_phy::{PhyRate, Preamble};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { ExpConfig::quick() } else { ExpConfig::full() };
    println!("Reproduction of: IEEE 802.11 Ad Hoc Networks: Performance Measurements");
    println!("(Anastasi, Borgia, Conti, Gregori — ICDCS-W 2003)");
    println!(
        "Sessions: {} per measurement, seed {}\n",
        cfg.duration, cfg.seed
    );

    table1();
    figure1();
    print_table2();
    print_figure2(cfg);
    print_figure3(cfg);
    print_figure4(cfg);
    print_table3(cfg);
    print_four_station("FIGURE 7 — asymmetric scenario, 11 Mb/s (d = 25/82.5/25 m)", figure7(cfg));
    print_four_station("FIGURE 9 — asymmetric scenario, 2 Mb/s (d = 25/92.5/25 m)", figure9(cfg));
    print_four_station("FIGURE 11 — symmetric scenario, 11 Mb/s (d = 25/62.5/25 m)", figure11(cfg));
    print_four_station("FIGURE 12 — symmetric scenario, 2 Mb/s (d = 25/62.5/25 m)", figure12(cfg));
}

fn table1() {
    let p = Dot11bParams::table1();
    println!("== TABLE 1 — IEEE 802.11b parameter values ==");
    println!(
        "Slot {} us | tau {} us | PHYhdr {} bits | MAChdr {} bits | SIFS {} us | DIFS {} us",
        p.slot_us, p.tau_us, p.phy_hdr_bits, p.mac_hdr_bits, p.sifs_us, p.difs_us
    );
    println!(
        "ACK {} bits + PHYhdr | CWmin {} slots | CWmax {} slots | rates 1, 2, 5.5, 11 Mb/s\n",
        p.ack_bits, p.cw_min, p.cw_max
    );
}

fn figure1() {
    println!("== FIGURE 1 — encapsulation overheads (m = 512 B) ==");
    println!("{:>9} | {:>9} | {:>6} | {:>6} | {:>8} | payload airtime", "transport", "data rate", "IP", "MPDU", "airtime");
    for (t, label) in [(TransportKind::Udp, "UDP"), (TransportKind::Tcp, "TCP")] {
        for rate in [PhyRate::R11, PhyRate::R1] {
            let b = overhead_breakdown(512, t, rate, Preamble::Long);
            println!(
                "{label:>9} | {rate:>9} | {:>4} B | {:>4} B | {:>6.0} us | {:>5.1}%",
                b.ip_bytes,
                b.mpdu_bytes,
                b.total_us(),
                100.0 * b.payload_airtime_fraction()
            );
        }
    }
    println!();
}

fn print_table2() {
    println!("== TABLE 2 — maximum throughput (Mb/s), analytic ==");
    println!("            |     m = 512 B      |     m = 1024 B");
    println!("  data rate | no RTS/CTS RTS/CTS | no RTS/CTS RTS/CTS");
    for row in table2() {
        println!(
            "{:>11} |  {:>8.3} {:>8.3} |  {:>8.3} {:>8.3}",
            row.rate.to_string(),
            row.m512_basic,
            row.m512_rts,
            row.m1024_basic,
            row.m1024_rts
        );
    }
    println!("(paper prints 0.738 for 1 Mb/s / 512 B / RTS-CTS; that cell is");
    println!(" inconsistent with the other 15 — see EXPERIMENTS.md)\n");
}

fn print_figure2(cfg: ExpConfig) {
    println!("== FIGURE 2 — ideal vs measured throughput, 11 Mb/s, m = 512 B ==");
    println!("{:>10} | {:>9} | {:>9} | {:>9}", "scheme", "ideal", "real UDP", "real TCP");
    for row in figure2::figure2(cfg) {
        println!(
            "{:>10} | {:>7.3} M | {:>7.3} M | {:>7.3} M",
            row.scheme.to_string(),
            row.ideal_mbps,
            row.udp_mbps,
            row.tcp_mbps
        );
    }
    println!("(ideal = Eq. (1)/(2) with every term included)\n");
}

fn print_figure3(cfg: ExpConfig) {
    println!("== FIGURE 3 — packet loss vs distance per data rate ==");
    let curves = figure3::figure3(cfg);
    print!("{:>8} |", "d (m)");
    for c in &curves {
        print!(" {:>8}", c.rate.to_string());
    }
    println!();
    for (i, &d) in figure3::DISTANCES_M.iter().enumerate() {
        print!("{d:>8.0} |");
        for c in &curves {
            print!(" {:>8.2}", c.curve.points()[i].1);
        }
        println!();
    }
    println!();
}

fn print_figure4(cfg: ExpConfig) {
    println!("== FIGURE 4 — 1 Mb/s transmission range on different days ==");
    let curves = figure4::figure4(cfg);
    print!("{:>8} |", "d (m)");
    for c in &curves {
        print!(" {:>20}", c.day);
    }
    println!();
    for (i, &d) in figure4::DISTANCES_M.iter().enumerate() {
        print!("{d:>8.0} |");
        for c in &curves {
            print!(" {:>20.2}", c.curve.points()[i].1);
        }
        println!();
    }
    for c in &curves {
        match estimate_crossing(&c.curve, 0.5) {
            Some(r) => println!("  {}: 50% loss at ~{r:.0} m", c.day),
            None => println!("  {}: still connected at 160 m", c.day),
        }
    }
    println!();
}

fn print_table3(cfg: ExpConfig) {
    println!("== TABLE 3 — transmission-range estimates ==");
    println!("{:>14} | {:>9} | {:>9} | {:>9} | {:>9}", "", "11 Mb/s", "5.5 Mb/s", "2 Mb/s", "1 Mb/s");
    let entries = table3::table3(cfg);
    let fmt = |r: Option<f64>| match r {
        Some(m) => format!("{m:>6.0} m"),
        None => ">150 m".to_owned(),
    };
    print!("{:>14} |", "data range");
    for e in entries.iter().rev() {
        print!(" {:>9} |", fmt(e.data_range_m));
    }
    println!();
    print!("{:>14} |", "control range");
    for e in entries.iter().rev() {
        print!(" {:>9} |", fmt(e.control_range_m));
    }
    println!("\n(paper: data 30 / 70 / 90-100 / 110-130 m; control 90 m at 2 Mb/s, 120 m at 1 Mb/s)\n");
}

fn print_four_station(title: &str, cells: Vec<FourStationCell>) {
    println!("== {title} ==");
    println!(
        "{:>9} | {:>10} | {:>12} | {:>12} | imbalance",
        "transport", "scheme", "S1->S2", "S3->S4"
    );
    for c in &cells {
        println!(
            "{:>9} | {:>10} | {:>8.0} kb/s | {:>8.0} kb/s | {:>6.2}x",
            c.transport.to_string(),
            c.scheme.to_string(),
            c.session1_kbps,
            c.session2_kbps,
            c.imbalance()
        );
    }
    println!();
}
